"""REINFORCE training with a rollout baseline (Eq. 5/6 of the paper).

The policy samples node sequences; each is packed through ``rho`` and
rewarded by the cosine similarity (Eq. 3) between its stage vector and
the exact schedule's.  The surrogate loss per sample is

``(cost - baseline) * (-log p(pi))``   with ``cost = 1 - R``,

where the baseline is the *rollout baseline* of Kool et al. [7]: the
greedy decode of the best-so-far frozen policy on the same graph.  The
frozen policy is refreshed whenever the training policy beats it on a
held-out evaluation split.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.synthetic import LabeledExample, batch_examples, stack_precedence
from repro.errors import TrainingError
from repro.nn.adam import Adam
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.rl.reward import stage_cosine_reward
from repro.scheduling.sequence import pack_sequence
from repro.utils.rng import SeedLike, resolve_rng


@dataclass
class ReinforceConfig:
    """Hyper-parameters of the REINFORCE loop.

    The paper trains 300 epochs at lr 1e-4 with batch 128 on a GPU;
    defaults here are CPU-scaled but expose the same knobs.
    """

    batch_size: int = 32
    learning_rate: float = 1e-4
    baseline: str = "rollout"  # "rollout" | "batch_mean" | "none"
    budget_slack: Optional[float] = None  # None -> minimal-budget rho
    entropy_bonus: float = 0.0  # weight of the exploration entropy bonus
    grad_clip_norm: float = 2.0
    baseline_refresh_interval: int = 10
    eval_fraction: float = 0.1
    seed: int = 0


@dataclass
class TrainingMetrics:
    """One optimization step's diagnostics."""

    step: int
    mean_cost: float
    mean_baseline: float
    mean_reward: float
    grad_norm: float
    mean_entropy: float = 0.0


#: Pluggable per-sample cost: ``cost_fn(example, order_names) -> float``.
CostFn = Callable[[LabeledExample, List[str]], float]


class ReinforceTrainer:
    """Policy-gradient trainer over a labeled synthetic dataset.

    ``cost_fn`` replaces the default Eq. 3 cosine cost with any
    per-sample cost over the decoded node order (lower is better; keep
    it roughly in ``[0, 1]`` so the configured learning rates transfer).
    The online-adaptation loop uses this to fine-tune directly on the
    pipeline-latency reward; the rollout baseline, evaluation split and
    entropy bonus all apply unchanged.
    """

    def __init__(
        self,
        policy: PointerNetworkPolicy,
        examples: Sequence[LabeledExample],
        config: ReinforceConfig = ReinforceConfig(),
        cost_fn: Optional[CostFn] = None,
    ) -> None:
        if not examples:
            raise TrainingError("training requires a non-empty dataset")
        if config.baseline not in ("rollout", "batch_mean", "none"):
            raise TrainingError(f"unknown baseline kind {config.baseline!r}")
        if cost_fn is not None and not callable(cost_fn):
            raise TrainingError("cost_fn must be callable")
        self.policy = policy
        self.config = config
        self.cost_fn = cost_fn
        self._rng = resolve_rng(config.seed)
        # Eval and train splits must stay disjoint: cap the eval share at
        # len - 1 so a large ``eval_fraction`` (or a tiny dataset) never
        # silently evaluates the rollout baseline on its own training
        # data.  A singleton dataset trains on its one example and skips
        # held-out evaluation (``_evaluate`` returns 0.0).
        split = int(len(examples) * config.eval_fraction)
        if config.eval_fraction > 0.0:
            split = max(1, split)
        split = min(split, len(examples) - 1)
        self.eval_examples = list(examples[:split])
        self.train_examples = list(examples[split:])
        self.optimizer = Adam(
            policy, lr=config.learning_rate, grad_clip_norm=config.grad_clip_norm
        )
        self._baseline_policy: Optional[PointerNetworkPolicy] = None
        self._baseline_eval_cost = float("inf")
        if config.baseline == "rollout":
            self._baseline_policy = self._clone_policy()
            self._baseline_eval_cost = self._evaluate(self._baseline_policy)
        self._step = 0
        self.history: List[TrainingMetrics] = []

    # ------------------------------------------------------------------
    def _clone_policy(self) -> PointerNetworkPolicy:
        clone = PointerNetworkPolicy(
            feature_dim=self.policy.feature_dim,
            hidden_size=self.policy.hidden_size,
            logit_clip=self.policy.logit_clip,
        )
        clone.load_state_dict(self.policy.state_dict())
        return clone

    def _costs(
        self,
        examples: Sequence[LabeledExample],
        actions: np.ndarray,
    ) -> np.ndarray:
        """Per-row cost: ``cost_fn`` when given, else ``1 - R`` (Eq. 3)."""
        if self.cost_fn is not None:
            return np.array(
                [
                    float(
                        self.cost_fn(
                            example, example.queue.names_for(actions[b])
                        )
                    )
                    for b, example in enumerate(examples)
                ]
            )
        costs = np.zeros(len(examples))
        for b, example in enumerate(examples):
            order = example.queue.names_for(actions[b])
            packed = pack_sequence(
                example.graph,
                order,
                example.num_stages,
                budget_slack=self.config.budget_slack,
            )
            gamma_order = example.queue.names_for(example.gamma_indices)
            packed_gamma = pack_sequence(
                example.graph,
                gamma_order,
                example.num_stages,
                budget_slack=self.config.budget_slack,
            )
            names = example.queue.node_names
            reward = stage_cosine_reward(
                [packed.assignment[n] for n in names],
                [packed_gamma.assignment[n] for n in names],
            )
            costs[b] = 1.0 - reward
        return costs

    def _evaluate(self, policy: PointerNetworkPolicy) -> float:
        """Mean greedy cost on the held-out split."""
        total = 0.0
        count = 0
        for chunk, features, _ in batch_examples(
            self.eval_examples, self.config.batch_size, shuffle=False
        ):
            rollout = policy.forward(
                features, mode="greedy", precedence=stack_precedence(chunk)
            )
            total += float(self._costs(chunk, rollout.actions).sum())
            count += len(chunk)
        return total / max(1, count)

    # ------------------------------------------------------------------
    def train_step(
        self, chunk: Sequence[LabeledExample], features: np.ndarray
    ) -> TrainingMetrics:
        """One sampled batch + policy-gradient update."""
        config = self.config
        precedence = stack_precedence(chunk)
        rollout = self.policy.forward(
            features, mode="sample", rng=self._rng, precedence=precedence
        )
        costs = self._costs(chunk, rollout.actions)
        if config.baseline == "rollout" and self._baseline_policy is not None:
            greedy = self._baseline_policy.forward(
                features, mode="greedy", precedence=precedence
            )
            baselines = self._costs(chunk, greedy.actions)
        elif config.baseline == "batch_mean":
            baselines = np.full_like(costs, costs.mean())
        else:
            baselines = np.zeros_like(costs)
        coeff = (costs - baselines) / len(chunk)
        entropy_coeff = None
        if config.entropy_bonus:
            # Loss gains -beta * H per sample (normalized like the policy
            # term), so a positive bonus rewards exploration; the exact
            # entropy gradient flows through PointerNetworkPolicy.backward.
            entropy_coeff = np.full(
                len(chunk), config.entropy_bonus / len(chunk)
            )
        self.policy.zero_grad()
        self.policy.backward(rollout, coeff, entropy_coeff=entropy_coeff)
        grad_norm = self.optimizer.step()

        self._step += 1
        if (
            config.baseline == "rollout"
            and self._step % config.baseline_refresh_interval == 0
        ):
            current_cost = self._evaluate(self.policy)
            if current_cost < self._baseline_eval_cost:
                self._baseline_policy = self._clone_policy()
                self._baseline_eval_cost = current_cost
        metrics = TrainingMetrics(
            step=self._step,
            mean_cost=float(costs.mean()),
            mean_baseline=float(baselines.mean()),
            mean_reward=float(1.0 - costs.mean()),
            grad_norm=grad_norm,
            mean_entropy=float(rollout.entropy.mean()),
        )
        self.history.append(metrics)
        return metrics

    def train(self, num_steps: int) -> List[TrainingMetrics]:
        """Run ``num_steps`` batches (cycling the dataset as needed)."""
        if num_steps < 1:
            raise TrainingError("num_steps must be positive")
        done = 0
        while done < num_steps:
            for chunk, features, _ in batch_examples(
                self.train_examples, self.config.batch_size, rng=self._rng
            ):
                self.train_step(chunk, features)
                done += 1
                if done >= num_steps:
                    break
        return self.history
