"""RESPECT's reinforcement-learning framework.

The LSTM pointer-network policy (Fig. 1b / Algorithm 1 of the paper),
the cosine-similarity rewards (Eq. 1/3), REINFORCE training with a
rollout baseline (Eq. 5/6), the supervised-imitation variant used for
warm starting, the checkpoint lifecycle (registry, validation,
train-on-first-use regeneration), and the end-to-end
:class:`RespectScheduler` that turns a trained policy into a drop-in
scheduler with both single-graph and batched inference.
"""

from repro.rl.checkpoints import (
    available_checkpoints,
    checkpoint_cache_dir,
    ensure_pretrained,
    load_checkpoint,
    save_checkpoint,
    train_checkpoint,
)
from repro.rl.ptrnet import PointerNetworkPolicy, PolicyRollout
from repro.rl.respect import RespectScheduler, load_pretrained_policy
from repro.rl.reward import (
    exact_match_fraction,
    sequence_cosine_reward,
    stage_cosine_reward,
)

__all__ = [
    "PointerNetworkPolicy",
    "PolicyRollout",
    "RespectScheduler",
    "available_checkpoints",
    "checkpoint_cache_dir",
    "ensure_pretrained",
    "exact_match_fraction",
    "load_checkpoint",
    "load_pretrained_policy",
    "save_checkpoint",
    "sequence_cosine_reward",
    "stage_cosine_reward",
    "train_checkpoint",
]
