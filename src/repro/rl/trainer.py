"""End-to-end training pipeline for RESPECT policies.

Combines the data-independent synthetic recipe (Sec. III) with the two
training modes: teacher-forced warm start followed by REINFORCE
fine-tuning with the rollout baseline.  ``train_respect_policy`` is what
``examples/train_respect.py`` and the checkpoint-regeneration script
call; paper-scale settings are a matter of raising the counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datasets.synthetic import LabeledExample, generate_dataset
from repro.embedding.features import EmbeddingConfig
from repro.errors import TrainingError
from repro.rl.imitation import ImitationConfig, ImitationTrainer
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer


@dataclass
class RespectTrainingConfig:
    """Full training recipe.

    The paper's setting is ``dataset_size=1_000_000``, ``hidden_size=256``,
    300 epochs of pure REINFORCE on a GPU; the defaults here are scaled
    for CPU-only runs while keeping every structural choice identical
    (|V| = 30 synthetic graphs, degrees 2..6, stage mix 4..6).
    """

    dataset_size: int = 300
    num_nodes: int = 30
    degrees: Sequence[int] = (2, 3, 4, 5, 6)
    stage_choices: Sequence[int] = (4, 5, 6)
    hidden_size: int = 64
    logit_clip: float = 10.0
    embedding: EmbeddingConfig = field(default_factory=EmbeddingConfig)
    imitation_steps: int = 150
    reinforce_steps: int = 50
    imitation: ImitationConfig = field(default_factory=ImitationConfig)
    reinforce: ReinforceConfig = field(default_factory=ReinforceConfig)
    label_solver: str = "ilp"
    seed: int = 0


@dataclass
class RespectTrainingResult:
    """Everything produced by one training run."""

    policy: PointerNetworkPolicy
    examples: List[LabeledExample]
    imitation_history: List[object]
    reinforce_history: List[object]

    def final_metrics(self) -> Dict[str, float]:
        """Convenient last-step summary for logs and tests."""
        out: Dict[str, float] = {}
        if self.imitation_history:
            last = self.imitation_history[-1]
            out["imitation_loss"] = last.loss
            out["imitation_token_accuracy"] = last.token_accuracy
        if self.reinforce_history:
            last = self.reinforce_history[-1]
            out["reinforce_cost"] = last.mean_cost
            out["reinforce_reward"] = last.mean_reward
        return out


def train_respect_policy(
    config: RespectTrainingConfig = RespectTrainingConfig(),
    examples: Optional[Sequence[LabeledExample]] = None,
    policy: Optional[PointerNetworkPolicy] = None,
) -> RespectTrainingResult:
    """Train a RESPECT policy with the synthetic-only recipe.

    Parameters
    ----------
    config:
        Training recipe (dataset size, model width, step counts).
    examples:
        Pre-generated labeled dataset; omitted -> generated per config.
    policy:
        Warm policy to continue training; omitted -> fresh initialization.
    """
    if config.imitation_steps < 0 or config.reinforce_steps < 0:
        raise TrainingError("step counts must be non-negative")
    if examples is None:
        examples = generate_dataset(
            config.dataset_size,
            num_nodes=config.num_nodes,
            degrees=config.degrees,
            stage_choices=config.stage_choices,
            solver=config.label_solver,
            embedding=config.embedding,
            seed=config.seed,
        )
    examples = list(examples)
    if policy is None:
        policy = PointerNetworkPolicy(
            feature_dim=config.embedding.feature_dim,
            hidden_size=config.hidden_size,
            logit_clip=config.logit_clip,
            seed=config.seed,
        )
    imitation_history: List[object] = []
    if config.imitation_steps:
        imitation = ImitationTrainer(policy, examples, config.imitation)
        imitation_history = list(imitation.train(config.imitation_steps))
    reinforce_history: List[object] = []
    if config.reinforce_steps:
        reinforce = ReinforceTrainer(policy, examples, config.reinforce)
        reinforce_history = list(reinforce.train(config.reinforce_steps))
    return RespectTrainingResult(
        policy=policy,
        examples=examples,
        imitation_history=imitation_history,
        reinforce_history=reinforce_history,
    )
