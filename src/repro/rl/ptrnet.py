"""LSTM pointer network (PtrNet) policy — the paper's RL agent.

Architecture (Fig. 1b / Algorithm 1):

* a linear projection embeds each node's feature row into the hidden
  space;
* an **encoder** LSTM digests the input queue ``q`` and produces the
  context matrix ``C`` (one context per node) plus its final latent
  state;
* a **decoder** LSTM emits one node per step: its hidden state is
  refined by a *glimpse* attention over ``C``, a *pointer* head scores
  every node, visited nodes are masked to ``-inf``, and the next node is
  sampled (training) or taken greedily (inference).  The chosen node's
  embedding becomes the next decoder input; the first decoder input is a
  trainable vector.

``forward`` records every intermediate needed by ``backward``, which
implements full backpropagation-through-time for the REINFORCE surrogate
loss ``sum_b coeff_b * (-log p(pi_b))`` — the same code path serves
policy gradients (``coeff = cost - baseline``) and supervised imitation
(``coeff = 1``, teacher-forced actions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TrainingError
from repro.nn import functional as F
from repro.nn.attention import AttentionHead, Glimpse
from repro.nn.init import glorot_uniform, zeros
from repro.nn.lstm import LSTMCell
from repro.nn.params import Module
from repro.utils.rng import SeedLike, resolve_rng

_MODES = ("sample", "greedy", "teacher")


@dataclass
class _StepCache:
    """Per-decode-step intermediates for BPTT."""

    lstm_cache: Dict[str, np.ndarray]
    glimpse_cache: Dict[str, np.ndarray]
    pointer_cache: Dict[str, np.ndarray]
    mask: np.ndarray          # [B, T] bool, True = selectable
    probs: np.ndarray         # [B, T] masked softmax
    actions: np.ndarray       # [B] int
    prev_actions: Optional[np.ndarray]  # [B] int or None for step 0


@dataclass
class PolicyRollout:
    """Result of one policy unroll over a batch of graphs.

    ``actions[b]`` is the node-picking order ``pi`` for batch row ``b``
    (indices into the encoder queue); ``log_prob[b]`` is
    ``log p(pi_b | G_b)``.
    """

    actions: np.ndarray       # [B, T] int
    log_prob: np.ndarray      # [B]
    entropy: np.ndarray       # [B] mean per-step entropy
    # -- private intermediates consumed by backward --------------------
    features: np.ndarray
    emb: np.ndarray
    contexts: np.ndarray
    enc_caches: List[Dict[str, np.ndarray]]
    steps: List[_StepCache]
    #: Real node counts per row for padded batches; ``None`` when every
    #: row uses the full unroll.  ``actions[b, lengths[b]:]`` is padding.
    lengths: Optional[np.ndarray] = None


class PointerNetworkPolicy(Module):
    """Encoder/decoder LSTM-PtrNet with glimpse + pointer attention.

    Parameters
    ----------
    feature_dim:
        Width of the embedding rows (see :class:`EmbeddingConfig`).
    hidden_size:
        LSTM width.  The paper uses 256; CPU-scale configurations in this
        repo default to smaller sizes (see the training examples).
    logit_clip:
        Tanh clipping constant ``C`` on pointer logits (Bello et al.);
        0 disables.
    seed:
        Parameter-initialization seed.
    """

    def __init__(
        self,
        feature_dim: int,
        hidden_size: int = 64,
        logit_clip: float = 10.0,
        seed: SeedLike = 0,
    ) -> None:
        super().__init__()
        if feature_dim < 1 or hidden_size < 1:
            raise TrainingError("feature_dim and hidden_size must be positive")
        rng = resolve_rng(seed)
        self.feature_dim = feature_dim
        self.hidden_size = hidden_size
        self.logit_clip = logit_clip
        self.w_emb = self.add_param("w_emb", glorot_uniform((feature_dim, hidden_size), rng))
        self.b_emb = self.add_param("b_emb", zeros((hidden_size,)))
        self.encoder = self.add_module("encoder", LSTMCell(hidden_size, hidden_size, rng))
        self.decoder = self.add_module("decoder", LSTMCell(hidden_size, hidden_size, rng))
        self.glimpse = self.add_module("glimpse", Glimpse(hidden_size, rng))
        self.pointer = self.add_module(
            "pointer", AttentionHead(hidden_size, logit_clip=logit_clip, rng=rng)
        )
        self.d0 = self.add_param("d0", glorot_uniform((hidden_size,), rng))

    # ------------------------------------------------------------------
    def forward(
        self,
        features: np.ndarray,
        mode: str = "greedy",
        target: Optional[np.ndarray] = None,
        rng: SeedLike = None,
        precedence: Optional[np.ndarray] = None,
        lengths: Optional[np.ndarray] = None,
        keep_caches: bool = True,
    ) -> PolicyRollout:
        """Unroll the policy over ``features`` (``[B, T, F]``).

        ``mode='sample'`` draws actions from the pointer distribution,
        ``'greedy'`` takes argmax, ``'teacher'`` follows ``target``
        (``[B, T]`` permutations) for supervised imitation.

        ``precedence`` (optional, ``[B, T, T]`` bool with
        ``precedence[b, i, j] = True`` iff queue position ``j`` is a
        parent of position ``i``) restricts every step's choices to
        *schedulable* nodes — those whose parents have all been picked.
        This is how the pointer decoder "reinforces the dependency
        constraints among nodes": any decoded order is then a valid
        topological order of the DAG.

        ``lengths`` (optional, ``[B]`` int) enables *padded* batches of
        graphs with different node counts: row ``b`` treats only its
        first ``lengths[b]`` queue positions as real nodes.  Padded
        positions are never glimpsed at nor pointed to, the encoder state
        of a row freezes at its own final real node, and a row that has
        emitted all of its nodes keeps decoding dummies (position 0, zero
        log-probability contribution) until the longest row finishes, so
        ``actions[b, :lengths[b]]`` is exactly the permutation a solo
        unpadded decode of the same graph would produce.  Greedy-mode
        only — padded rollouts carry no consistent caches for BPTT.

        ``keep_caches=False`` drops the per-step BPTT intermediates
        (``O(T^2 H)`` memory).  Inference-only callers should disable
        them: retaining a fresh ``[B, T, H]`` array per head per step
        defeats numpy's buffer reuse and slows large-graph decoding
        several-fold.  A cacheless rollout cannot be ``backward``-ed.
        """
        if mode not in _MODES:
            raise TrainingError(f"unknown decode mode {mode!r}")
        if features.ndim != 3:
            raise TrainingError(
                f"features must be [batch, nodes, dim], got shape {features.shape}"
            )
        if features.shape[2] != self.feature_dim:
            raise TrainingError(
                f"feature dim mismatch: policy expects {self.feature_dim}, "
                f"got {features.shape[2]}"
            )
        if mode == "teacher":
            if target is None:
                raise TrainingError("teacher mode requires a target sequence")
            target = np.asarray(target, dtype=int)
            if target.shape != features.shape[:2]:
                raise TrainingError(
                    f"target shape {target.shape} must be [batch, nodes]"
                )
        rng = resolve_rng(rng)
        # Compute in the parameters' dtype (float32 for inference clones).
        features = np.asarray(features, dtype=self.w_emb.value.dtype)
        batch, num_nodes, _ = features.shape
        if lengths is not None:
            if mode != "greedy":
                raise TrainingError(
                    "variable-length (padded) batches support greedy "
                    "decoding only"
                )
            lengths = np.asarray(lengths, dtype=int)
            if lengths.shape != (batch,):
                raise TrainingError(
                    f"lengths must be [batch], got shape {lengths.shape}"
                )
            if (lengths < 1).any() or (lengths > num_nodes).any():
                raise TrainingError(
                    f"lengths must lie in [1, {num_nodes}], got {lengths}"
                )
        remaining: Optional[np.ndarray] = None
        if precedence is not None:
            precedence = np.asarray(precedence, dtype=bool)
            if precedence.shape != (batch, num_nodes, num_nodes):
                raise TrainingError(
                    f"precedence must be [batch, nodes, nodes], got "
                    f"{precedence.shape}"
                )
            remaining = precedence.sum(axis=2).astype(int)  # unmet parents

        emb = features @ self.w_emb.value + self.b_emb.value  # [B, T, H]

        # Encoder pass.  With ``lengths``, a row's state freezes once its
        # real nodes run out, so the decoder is seeded by the same final
        # latent state a solo unpadded encode would produce.
        h, c = self.encoder.initial_state(batch)
        enc_caches: List[Dict[str, np.ndarray]] = []
        context_list: List[np.ndarray] = []
        for t in range(num_nodes):
            h_next, c_next, cache = self.encoder.forward(emb[:, t, :], h, c)
            if lengths is not None:
                active = (t < lengths)[:, None]
                h_next = np.where(active, h_next, h)
                c_next = np.where(active, c_next, c)
            h, c = h_next, c_next
            if keep_caches:
                enc_caches.append(cache)
            context_list.append(h)
        contexts = np.stack(context_list, axis=1)  # [B, T, H]

        # Decoder pass.  Context projections are loop-invariant: hoist
        # them so each step costs O(T H) instead of O(T H^2).
        glimpse_ref = self.glimpse.attention.precompute_ref(contexts)
        pointer_ref = self.pointer.precompute_ref(contexts)
        dh, dc = h, c  # final encoder latent state seeds the decoder
        d = np.tile(self.d0.value, (batch, 1))
        # Padded positions start out "visited": never glimpsed, never
        # pointed to, and (having no precedence entries) never unmasked.
        visited = np.zeros((batch, num_nodes), dtype=bool)
        if lengths is not None:
            visited |= np.arange(num_nodes)[None, :] >= lengths[:, None]
        log_prob = np.zeros(batch)
        entropy = np.zeros(batch)
        steps: List[_StepCache] = []
        actions_out = np.zeros((batch, num_nodes), dtype=int)
        prev_actions: Optional[np.ndarray] = None
        rows = np.arange(batch)
        for i in range(num_nodes):
            dh, dc, lstm_cache = self.decoder.forward(d, dh, dc)
            mask = ~visited
            if remaining is not None:
                mask &= remaining == 0
            finished: Optional[np.ndarray] = None
            if lengths is not None:
                # Rows that already emitted every real node have an
                # all-False mask; give them a dummy choice (position 0,
                # probability one) so the softmax stays finite.  Their
                # log-probability contribution is log(1) = 0 and their
                # trailing actions are sliced off by the caller.
                finished = i >= lengths
                mask[finished, 0] = True
            glimpse_vec, glimpse_cache = self.glimpse.forward(
                contexts, dh, mask, ref=glimpse_ref
            )
            logits, pointer_cache = self.pointer.forward(
                contexts, glimpse_vec, ref=pointer_ref
            )
            masked_logits = np.where(mask, logits, F.MASK_LOGIT)
            log_probs = F.log_softmax(masked_logits)
            probs = np.exp(log_probs)
            if mode == "teacher":
                acts = target[:, i]  # type: ignore[index]
                if not mask[rows, acts].all():
                    raise TrainingError(
                        f"teacher sequence picks a masked node at step {i} "
                        f"(revisit or precedence violation)"
                    )
            elif mode == "greedy":
                acts = np.argmax(masked_logits, axis=1)
            else:
                acts = np.array(
                    [rng.choice(num_nodes, p=probs[b]) for b in range(batch)]
                )
            step_log_prob = log_probs[rows, acts]
            if finished is not None:
                step_log_prob = np.where(finished, 0.0, step_log_prob)
            log_prob += step_log_prob
            if mode != "greedy":
                # Entropy is a training diagnostic; skip it on the
                # inference path.
                with np.errstate(divide="ignore", invalid="ignore"):
                    plogp = np.where(probs > 0, probs * log_probs, 0.0)
                entropy -= plogp.sum(axis=1) / num_nodes
            if keep_caches:
                steps.append(
                    _StepCache(
                        lstm_cache=lstm_cache,
                        glimpse_cache=glimpse_cache,
                        pointer_cache=pointer_cache,
                        mask=mask.copy(),
                        probs=probs,
                        actions=acts.copy(),
                        prev_actions=prev_actions,
                    )
                )
            actions_out[:, i] = acts
            visited[rows, acts] = True
            if remaining is not None:
                delta = precedence[rows, :, acts].astype(int)
                if finished is not None:
                    delta[finished] = 0  # dummy picks must not corrupt
                remaining -= delta
            d = emb[rows, acts, :]
            prev_actions = acts
        return PolicyRollout(
            actions=actions_out,
            log_prob=log_prob,
            entropy=entropy,
            features=features,
            emb=emb,
            contexts=contexts,
            enc_caches=enc_caches,
            steps=steps,
            lengths=lengths,
        )

    # ------------------------------------------------------------------
    def greedy_decode(
        self,
        features: np.ndarray,
        precedence: Optional[np.ndarray] = None,
        lengths: Optional[np.ndarray] = None,
    ) -> PolicyRollout:
        """Vectorized greedy inference, bit-identical to ``forward``.

        Produces exactly the rollout of
        ``forward(features, mode="greedy", precedence=..., lengths=...,
        keep_caches=False)`` — same actions, same ``log_prob`` floats —
        but restructured for throughput:

        * both LSTM input projections are hoisted out of the time loops
          into single ``[B*T, H] @ [H, 4H]`` GEMMs (slices and row
          gathers of a hoisted projection are bitwise-equal to the
          per-step skinny matmuls they replace);
        * the decoder input becomes a row gather of that projection
          instead of an embedding gather followed by a per-step matmul;
        * attention heads run cacheless (:meth:`AttentionHead.scores`)
          and the per-step probability array (``exp`` of the full
          ``[B, T]`` log-softmax, unused by greedy decoding) is never
          materialized — the selected actions' log-probabilities are
          gathered straight from the shifted logits.

        The returned rollout carries no caches and cannot be
        ``backward``-ed; training unrolls must use :meth:`forward`.
        """
        if features.ndim != 3:
            raise TrainingError(
                f"features must be [batch, nodes, dim], got shape {features.shape}"
            )
        if features.shape[2] != self.feature_dim:
            raise TrainingError(
                f"feature dim mismatch: policy expects {self.feature_dim}, "
                f"got {features.shape[2]}"
            )
        features = np.asarray(features, dtype=self.w_emb.value.dtype)
        batch, num_nodes, _ = features.shape
        if lengths is not None:
            lengths = np.asarray(lengths, dtype=int)
            if lengths.shape != (batch,):
                raise TrainingError(
                    f"lengths must be [batch], got shape {lengths.shape}"
                )
            if (lengths < 1).any() or (lengths > num_nodes).any():
                raise TrainingError(
                    f"lengths must lie in [1, {num_nodes}], got {lengths}"
                )
        remaining: Optional[np.ndarray] = None
        if precedence is not None:
            precedence = np.asarray(precedence, dtype=bool)
            if precedence.shape != (batch, num_nodes, num_nodes):
                raise TrainingError(
                    f"precedence must be [batch, nodes, nodes], got "
                    f"{precedence.shape}"
                )
            remaining = precedence.sum(axis=2).astype(int)  # unmet parents

        hidden = self.hidden_size
        emb = features @ self.w_emb.value + self.b_emb.value  # [B, T, H]
        # Hoisting is only bitwise-safe when the replaced per-step matmul
        # and the large GEMM hit the same BLAS kernel; a one-row matmul
        # ([1, H] @ [H, 4H]) can dispatch differently, so batch==1 keeps
        # the per-step projections (there is nothing to amortize anyway).
        hoist = batch > 1
        enc_proj = None
        dec_proj = None
        if hoist:
            flat = emb.reshape(batch * num_nodes, hidden)
            enc_proj = (flat @ self.encoder.w_x.value).reshape(
                batch, num_nodes, 4 * hidden
            )
            dec_proj = (flat @ self.decoder.w_x.value).reshape(
                batch, num_nodes, 4 * hidden
            )
        h, c = self.encoder.initial_state(batch)
        context_list: List[np.ndarray] = []
        for t in range(num_nodes):
            h_next, c_next = self.encoder.forward_from_projection(
                enc_proj[:, t, :]
                if enc_proj is not None
                else emb[:, t, :] @ self.encoder.w_x.value,
                h,
                c,
            )
            if lengths is not None:
                active = (t < lengths)[:, None]
                h_next = np.where(active, h_next, h)
                c_next = np.where(active, c_next, c)
            h, c = h_next, c_next
            context_list.append(h)
        contexts = np.stack(context_list, axis=1)  # [B, T, H]

        glimpse_ref = self.glimpse.attention.precompute_ref(contexts)
        pointer_ref = self.pointer.precompute_ref(contexts)
        dh, dc = h, c
        # The first decoder input is the trainable d0 row, tiled *before*
        # projecting: a 1-D ``d0 @ w_x`` takes a different BLAS path and
        # is not bitwise-equal to the tiled 2-D product ``forward`` uses.
        x_proj = np.tile(self.d0.value, (batch, 1)) @ self.decoder.w_x.value
        visited = np.zeros((batch, num_nodes), dtype=bool)
        if lengths is not None:
            visited |= np.arange(num_nodes)[None, :] >= lengths[:, None]
        log_prob = np.zeros(batch)
        actions_out = np.zeros((batch, num_nodes), dtype=int)
        rows = np.arange(batch)
        for i in range(num_nodes):
            dh, dc = self.decoder.forward_from_projection(x_proj, dh, dc)
            mask = ~visited
            if remaining is not None:
                mask &= remaining == 0
            finished: Optional[np.ndarray] = None
            if lengths is not None:
                finished = i >= lengths
                mask[finished, 0] = True
            g_scores = self.glimpse.attention.scores(dh, glimpse_ref)
            weights = F.masked_softmax(g_scores, mask)
            glimpse_vec = np.einsum("bt,bth->bh", weights, contexts)
            logits = self.pointer.scores(glimpse_vec, pointer_ref)
            masked_logits = np.where(mask, logits, F.MASK_LOGIT)
            acts = np.argmax(masked_logits, axis=1)
            # Gathered log-softmax: same floats as
            # ``F.log_softmax(masked_logits)[rows, acts]`` without the
            # [B, T] materialization.
            shifted = masked_logits - np.max(masked_logits, axis=1, keepdims=True)
            step_log_prob = shifted[rows, acts] - np.log(
                np.sum(np.exp(shifted), axis=1)
            )
            if finished is not None:
                step_log_prob = np.where(finished, 0.0, step_log_prob)
            log_prob += step_log_prob
            actions_out[:, i] = acts
            visited[rows, acts] = True
            if remaining is not None:
                delta = precedence[rows, :, acts].astype(int)
                if finished is not None:
                    delta[finished] = 0  # dummy picks must not corrupt
                remaining -= delta
            x_proj = (
                dec_proj[rows, acts, :]
                if dec_proj is not None
                else emb[rows, acts, :] @ self.decoder.w_x.value
            )
        return PolicyRollout(
            actions=actions_out,
            log_prob=log_prob,
            entropy=np.zeros(batch),
            features=features,
            emb=emb,
            contexts=contexts,
            enc_caches=[],
            steps=[],
            lengths=lengths,
        )

    # ------------------------------------------------------------------
    def backward(
        self,
        rollout: PolicyRollout,
        coeff: np.ndarray,
        entropy_coeff: Optional[np.ndarray] = None,
    ) -> None:
        """Accumulate grads of the REINFORCE surrogate loss.

        The loss is ``sum_b [coeff_b * (-log p(pi_b))
        - entropy_coeff_b * H_b]`` where ``H_b`` is the rollout's mean
        per-step pointer entropy (exactly ``rollout.entropy[b]``), so a
        positive ``entropy_coeff`` *rewards* entropy — the standard
        exploration bonus.  The entropy gradient is exact (not a score
        -function estimate): per step ``dH/dz_j = -p_j (log p_j + H)``
        for the masked softmax ``p``.

        ``coeff`` is ``[B]``: advantage values for REINFORCE, or ``1/B``
        for supervised imitation.  ``entropy_coeff`` is ``[B]`` or
        ``None`` (no bonus).  Gradients accumulate into the module's
        parameters (call :meth:`zero_grad` between batches).
        """
        if rollout.lengths is not None:
            raise TrainingError(
                "cannot backprop through a variable-length (padded) rollout; "
                "train on uniform-size batches instead"
            )
        if not rollout.steps:
            raise TrainingError(
                "cannot backprop through a rollout decoded with "
                "keep_caches=False"
            )
        coeff = np.asarray(coeff, dtype=float)
        batch, num_nodes, _ = rollout.features.shape
        if coeff.shape != (batch,):
            raise TrainingError(f"coeff must be [batch], got {coeff.shape}")
        if entropy_coeff is not None:
            entropy_coeff = np.asarray(entropy_coeff, dtype=float)
            if entropy_coeff.shape != (batch,):
                raise TrainingError(
                    f"entropy_coeff must be [batch], got {entropy_coeff.shape}"
                )
        rows = np.arange(batch)
        demb = np.zeros_like(rollout.emb)       # [B, T, H]
        dcontexts = np.zeros_like(rollout.contexts)
        ddh = np.zeros((batch, self.hidden_size))
        ddc = np.zeros((batch, self.hidden_size))
        for step in reversed(rollout.steps):
            # d(-log p(a)) / dlogits = probs - onehot(a); masked entries
            # have probs == 0 and are never the action, and the mask
            # blocks gradient flow to the raw logits there anyway.
            dlogits = _probs_minus_onehot(step, coeff)
            if entropy_coeff is not None:
                dlogits += _entropy_grad(step, entropy_coeff, num_nodes)
            dctx_ptr, dglimpse = self.pointer.backward(dlogits, step.pointer_cache)
            dctx_glimpse, ddh_glimpse = self.glimpse.backward(
                dglimpse, step.glimpse_cache
            )
            dcontexts += dctx_ptr + dctx_glimpse
            dd, ddh, ddc = self.decoder.backward(
                ddh + ddh_glimpse, ddc, step.lstm_cache
            )
            if step.prev_actions is None:
                self.d0.grad += dd.sum(axis=0)
            else:
                demb[rows, step.prev_actions, :] += dd
        # Encoder BPTT; decoder initial state = encoder final state.
        dh_carry = ddh
        dc_carry = ddc
        for t in range(num_nodes - 1, -1, -1):
            dh_t = dh_carry + dcontexts[:, t, :]
            dx, dh_carry, dc_carry = self.encoder.backward(
                dh_t, dc_carry, rollout.enc_caches[t]
            )
            demb[:, t, :] += dx
        # Embedding projection.
        self.w_emb.grad += np.einsum("btf,bth->fh", rollout.features, demb)
        self.b_emb.grad += demb.sum(axis=(0, 1))

    # ------------------------------------------------------------------
    def config_dict(self) -> Dict[str, object]:
        """Constructor arguments, persisted beside checkpoints."""
        return {
            "feature_dim": self.feature_dim,
            "hidden_size": self.hidden_size,
            "logit_clip": self.logit_clip,
        }


def _probs_minus_onehot(step: _StepCache, coeff: np.ndarray) -> np.ndarray:
    """Gradient of ``-log p(action)`` w.r.t. the masked logits."""
    grad = step.probs.copy()
    rows = np.arange(grad.shape[0])
    grad[rows, step.actions] -= 1.0
    grad *= coeff[:, None]
    grad[~step.mask] = 0.0
    return grad


def _entropy_grad(
    step: _StepCache, entropy_coeff: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Gradient of ``-entropy_coeff * H_step / T`` w.r.t. masked logits.

    For ``p = softmax(z)`` and ``H = -sum_j p_j log p_j`` the exact
    per-entry derivative is ``dH/dz_j = -p_j (log p_j + H)``; the
    ``1/num_nodes`` factor matches the per-step averaging used by
    ``PolicyRollout.entropy``.
    """
    probs = step.probs
    with np.errstate(divide="ignore", invalid="ignore"):
        log_probs = np.where(probs > 0, np.log(probs), 0.0)
    step_entropy = -(probs * log_probs).sum(axis=1, keepdims=True)
    grad = probs * (log_probs + step_entropy)
    grad *= (entropy_coeff / num_nodes)[:, None]
    grad[~step.mask] = 0.0
    return grad
