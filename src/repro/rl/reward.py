"""Reward functions (Eq. 1 and Eq. 3 of the paper).

The RL agent is rewarded for *imitating* the exact scheduler: rewards are
cosine similarities between its output and the ground truth, either over
the raw pick-order sequences (Eq. 1) or — the form actually used for
training — over the stage-assignment vectors produced by packing both
sequences through ``rho`` (Eq. 3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Small constant guarding the cosine denominator (the paper's epsilon).
EPSILON = 1e-8


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    denominator = max(float(np.linalg.norm(a) * np.linalg.norm(b)), EPSILON)
    return float(np.dot(a, b) / denominator)


def sequence_cosine_reward(pi: Sequence[int], gamma: Sequence[int]) -> float:
    """Eq. 1: cosine similarity of the two pick-order index sequences.

    ``pi[i]`` / ``gamma[i]`` are the node indices chosen at step ``i`` by
    the policy and the exact algorithm respectively.  Indices are shifted
    by +1 so a leading node 0 still contributes signal.
    """
    if len(pi) != len(gamma):
        raise ValueError(f"sequence lengths differ: {len(pi)} vs {len(gamma)}")
    a = np.asarray(pi, dtype=float) + 1.0
    b = np.asarray(gamma, dtype=float) + 1.0
    return _cosine(a, b)


def stage_cosine_reward(stages_pi: Sequence[int], stages_gamma: Sequence[int]) -> float:
    """Eq. 3: cosine similarity of the packed stage-assignment vectors.

    ``stages_*[i]`` is the pipeline stage of node ``i`` under
    ``S' = rho(pi)`` and ``S = rho(gamma)``.  Stages are shifted by +1 so
    two identical all-stage-0 schedules score 1.0 rather than 0/eps.
    """
    if len(stages_pi) != len(stages_gamma):
        raise ValueError(
            f"stage vector lengths differ: {len(stages_pi)} vs {len(stages_gamma)}"
        )
    a = np.asarray(stages_pi, dtype=float) + 1.0
    b = np.asarray(stages_gamma, dtype=float) + 1.0
    return _cosine(a, b)


def exact_match_fraction(pi: Sequence[int], gamma: Sequence[int]) -> float:
    """Fraction of positions where the policy picked the teacher's node."""
    if len(pi) != len(gamma):
        raise ValueError(f"sequence lengths differ: {len(pi)} vs {len(gamma)}")
    if not len(pi):
        return 1.0
    a = np.asarray(pi)
    b = np.asarray(gamma)
    return float(np.mean(a == b))
