"""Checkpoint lifecycle: registry, validation, provenance, train-on-first-use.

A checkpoint is a pair of files — ``<name>.npz`` holding the parameter
arrays and a ``<name>.json`` *sidecar* holding everything needed to
rebuild and audit the policy: the constructor arguments, the full
training recipe, the seed, and provenance (who wrote it, from which git
state, with which format version).

Three storage tiers are searched in order by :func:`ensure_pretrained`:

1. the **packaged** directory ``repro/rl/pretrained`` shipped with the
   library (the committed ``respect_small`` artifact lives here);
2. the **user cache** (``$REPRO_CHECKPOINT_CACHE`` or
   ``~/.cache/respect-repro/checkpoints``);
3. **deterministic regeneration**: the name's registered training recipe
   is replayed (seeded end to end) via ``train_respect_policy`` and the
   result is written to the user cache for next time.

``scripts/regenerate_checkpoints.py`` drives the same registry to
(re)create the packaged artifacts.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.errors import CheckpointError
from repro.rl.ptrnet import PointerNetworkPolicy

#: Bumped when the on-disk layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1

#: Directory holding checkpoints shipped with the package.
PRETRAINED_DIR = Path(__file__).parent / "pretrained"

#: Default checkpoint name (the paper's CPU-scale synthetic recipe).
DEFAULT_CHECKPOINT = "respect_small"

#: JSON sidecar keys that must always be present.
_REQUIRED_CONFIG_KEYS = ("feature_dim", "hidden_size")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckpointSpec:
    """A named, reproducible training recipe.

    ``config_factory`` returns a fresh ``RespectTrainingConfig`` (built
    lazily so importing this module does not pull in the training stack);
    replaying it with its embedded seed regenerates the artifact
    deterministically.
    """

    name: str
    description: str
    config_factory: Callable[[], object]


_REGISTRY: Dict[str, CheckpointSpec] = {}


def register_checkpoint(spec: CheckpointSpec) -> CheckpointSpec:
    """Register (or replace) a named training recipe."""
    _REGISTRY[spec.name] = spec
    return spec


def get_checkpoint_spec(name: str) -> CheckpointSpec:
    """Look up a registered recipe; unknown names raise CheckpointError."""
    if name not in _REGISTRY:
        raise CheckpointError(
            f"no registered training recipe for checkpoint {name!r}; "
            f"known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def available_checkpoints() -> List[str]:
    """Names with a registered recipe (regenerable on any machine)."""
    return sorted(_REGISTRY)


def _default_small_config() -> object:
    from repro.rl.trainer import RespectTrainingConfig

    return RespectTrainingConfig()


register_checkpoint(
    CheckpointSpec(
        name=DEFAULT_CHECKPOINT,
        description=(
            "CPU-scale synthetic-only recipe: 300 labeled |V|=30 graphs "
            "(degrees 2..6, 4..6 stages), hidden 64, 150 imitation + 50 "
            "REINFORCE steps, seed 0"
        ),
        config_factory=_default_small_config,
    )
)


# ----------------------------------------------------------------------
# metadata / provenance
# ----------------------------------------------------------------------
def _git_describe() -> Optional[str]:
    """Best-effort git provenance of the working tree; None when absent."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _config_to_dict(config: object) -> Dict[str, object]:
    """JSON-serializable view of a RespectTrainingConfig (best effort)."""
    out: Dict[str, object] = {}
    for key, value in vars(config).items():
        if hasattr(value, "__dict__") and not isinstance(value, type):
            out[key] = {k: _jsonable(v) for k, v in vars(value).items()}
        else:
            out[key] = _jsonable(value)
    return out


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return repr(value)


def checkpoint_metadata(
    policy: PointerNetworkPolicy,
    name: str,
    training_config: Optional[object] = None,
    seed: Optional[int] = None,
    source: str = "api",
) -> Dict[str, object]:
    """Build the JSON-sidecar dict for ``policy``.

    The constructor arguments (``feature_dim``/``hidden_size``/
    ``logit_clip``) stay at the top level so older readers keep working;
    versioned metadata rides alongside them.
    """
    meta: Dict[str, object] = dict(policy.config_dict())
    meta["format_version"] = CHECKPOINT_FORMAT_VERSION
    meta["name"] = name
    meta["num_parameters"] = policy.num_parameters()
    if seed is not None:
        meta["seed"] = int(seed)
    if training_config is not None:
        meta["training_config"] = _config_to_dict(training_config)
        if seed is None and hasattr(training_config, "seed"):
            meta["seed"] = int(training_config.seed)  # type: ignore[arg-type]
    meta["provenance"] = {
        "created_by": source,
        "git": _git_describe(),
        "library": "respect-repro",
    }
    return meta


# ----------------------------------------------------------------------
# validated save / load
# ----------------------------------------------------------------------
def save_checkpoint(
    policy: PointerNetworkPolicy,
    directory: Union[str, Path],
    name: str,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Persist ``policy`` as ``<dir>/<name>.npz`` + ``<name>.json``.

    ``metadata`` defaults to :func:`checkpoint_metadata` with no training
    record; pass a richer dict to capture the recipe and provenance.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    meta = metadata if metadata is not None else checkpoint_metadata(policy, name)
    for key in _REQUIRED_CONFIG_KEYS:
        if key not in meta:
            raise CheckpointError(f"checkpoint metadata misses key {key!r}")
    # Write-then-rename so an interrupted save never leaves a torn
    # artifact behind (a half-written pair would poison the cache tier).
    npz_tmp = directory / f"{name}.npz.tmp"
    json_tmp = directory / f"{name}.json.tmp"
    with open(npz_tmp, "wb") as handle:
        np.savez(handle, **policy.state_dict())
    json_tmp.write_text(json.dumps(meta, indent=2))
    os.replace(npz_tmp, directory / f"{name}.npz")
    os.replace(json_tmp, directory / f"{name}.json")
    return directory / f"{name}.npz"


def read_metadata(directory: Union[str, Path], name: str) -> Dict[str, object]:
    """Parse and validate the JSON sidecar of checkpoint ``name``."""
    config_path = Path(directory) / f"{name}.json"
    if not config_path.exists():
        raise CheckpointError(
            f"checkpoint {name!r} not found under {Path(directory)} "
            f"(expected {name}.json and {name}.npz)"
        )
    try:
        meta = json.loads(config_path.read_text())
    except (ValueError, OSError) as exc:
        raise CheckpointError(
            f"checkpoint sidecar {config_path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(meta, dict):
        raise CheckpointError(
            f"checkpoint sidecar {config_path} must hold a JSON object"
        )
    missing = [k for k in _REQUIRED_CONFIG_KEYS if k not in meta]
    if missing:
        raise CheckpointError(
            f"checkpoint sidecar {config_path} misses required keys "
            f"{missing}; it may predate format v{CHECKPOINT_FORMAT_VERSION} "
            f"or be corrupt"
        )
    return meta


def load_checkpoint(directory: Union[str, Path], name: str) -> PointerNetworkPolicy:
    """Load and *validate* a checkpoint written by :func:`save_checkpoint`.

    Every failure mode of a corrupt or mismatched artifact — unreadable
    JSON, missing config keys, a truncated/garbage ``.npz``, weight names
    or shapes that disagree with the sidecar's architecture — surfaces as
    :class:`CheckpointError` with a message naming the file, never as a
    deep ``numpy``/``zipfile`` error.
    """
    directory = Path(directory)
    meta = read_metadata(directory, name)
    weights_path = directory / f"{name}.npz"
    if not weights_path.exists():
        raise CheckpointError(
            f"checkpoint {name!r} not found under {directory} "
            f"(expected {name}.json and {name}.npz)"
        )
    try:
        policy = PointerNetworkPolicy(
            feature_dim=int(meta["feature_dim"]),  # type: ignore[arg-type]
            hidden_size=int(meta["hidden_size"]),  # type: ignore[arg-type]
            logit_clip=float(meta.get("logit_clip", 10.0)),  # type: ignore[arg-type]
        )
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint sidecar {name}.json holds non-numeric architecture "
            f"fields: {exc}"
        ) from exc
    try:
        with np.load(weights_path) as data:
            state = {key: data[key] for key in data.files}
    except CheckpointError:
        raise
    except Exception as exc:  # zipfile/pickle/ValueError — corrupt archive
        raise CheckpointError(
            f"checkpoint weights {weights_path} are unreadable "
            f"(truncated or corrupt archive): {exc}"
        ) from exc
    try:
        policy.load_state_dict(state)
    except CheckpointError as exc:
        raise CheckpointError(
            f"checkpoint {name!r} under {directory} does not match the "
            f"architecture its sidecar declares "
            f"(feature_dim={policy.feature_dim}, "
            f"hidden_size={policy.hidden_size}): {exc}"
        ) from exc
    return policy


# ----------------------------------------------------------------------
# the three-tier lookup
# ----------------------------------------------------------------------
def checkpoint_cache_dir() -> Path:
    """User cache for regenerated checkpoints.

    ``$REPRO_CHECKPOINT_CACHE`` overrides the default
    ``$XDG_CACHE_HOME/respect-repro/checkpoints`` (falling back to
    ``~/.cache``).
    """
    override = os.environ.get("REPRO_CHECKPOINT_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "respect-repro" / "checkpoints"


def _has_checkpoint(directory: Path, name: str) -> bool:
    return (directory / f"{name}.json").exists() and (
        directory / f"{name}.npz"
    ).exists()


def train_checkpoint(
    name: str, directory: Optional[Union[str, Path]] = None
) -> PointerNetworkPolicy:
    """Deterministically (re)train checkpoint ``name`` from its recipe.

    Writes the artifact (with full metadata) to ``directory`` when given;
    the same seeds produce the same parameters on every replay.
    """
    from repro.rl.trainer import train_respect_policy

    spec = get_checkpoint_spec(name)
    config = spec.config_factory()
    result = train_respect_policy(config)
    if directory is not None:
        meta = checkpoint_metadata(
            result.policy,
            name,
            training_config=config,
            source="repro.rl.checkpoints.train_checkpoint",
        )
        save_checkpoint(result.policy, directory, name, metadata=meta)
    return result.policy


def ensure_pretrained(name: str = DEFAULT_CHECKPOINT) -> PointerNetworkPolicy:
    """Load checkpoint ``name``, regenerating it on first use if missing.

    Lookup order: the packaged ``repro/rl/pretrained`` directory, then
    the user cache (:func:`checkpoint_cache_dir`), then deterministic
    retraining via the registered recipe (cached for subsequent calls).
    A name that is neither shipped nor registered raises
    :class:`CheckpointError`.
    """
    if _has_checkpoint(PRETRAINED_DIR, name):
        try:
            return load_checkpoint(PRETRAINED_DIR, name)
        except CheckpointError:
            # A damaged shipped artifact (partial clone, disk error)
            # must not brick the default scheduler; fall through to the
            # cache / regeneration tiers when a recipe exists.
            if name not in _REGISTRY:
                raise
    cache = checkpoint_cache_dir()
    if _has_checkpoint(cache, name):
        try:
            return load_checkpoint(cache, name)
        except CheckpointError:
            # A corrupt cached artifact must not brick every future
            # load; fall through to regeneration when a recipe exists.
            if name not in _REGISTRY:
                raise
    if name not in _REGISTRY:
        raise CheckpointError(
            f"checkpoint {name!r} is neither shipped under {PRETRAINED_DIR} "
            f"nor cached under {cache}, and no training recipe is "
            f"registered for it (known recipes: {sorted(_REGISTRY)})"
        )
    return train_checkpoint(name, directory=cache)
