"""DenseNet layer graphs (Huang et al.), following keras.applications.

Table I reproduction: DenseNet121 |V| = 429 (depth 428), DenseNet169
|V| = 597 (depth 596), DenseNet201 |V| = 709 (depth 708); deg(V) = 2
because every Keras DenseNet ``Concatenate`` merges exactly two tensors
(the running feature map and the newest conv block output).
"""

from __future__ import annotations

from typing import List

from repro.graphs.dag import ComputationalGraph
from repro.models.builder import LayerGraphBuilder

_GROWTH_RATE = 32


def _conv_block(b: LayerGraphBuilder, x: str, name: str) -> str:
    """Keras DenseNet ``conv_block``: BN-ReLU-Conv1x1-BN-ReLU-Conv3x3-Concat."""
    y = b.bn(x, name=f"{name}_0_bn")
    y = b.act(y, name=f"{name}_0_relu")
    y = b.conv(y, 4 * _GROWTH_RATE, 1, use_bias=False, name=f"{name}_1_conv")
    y = b.bn(y, name=f"{name}_1_bn")
    y = b.act(y, name=f"{name}_1_relu")
    y = b.conv(y, _GROWTH_RATE, 3, padding="same", use_bias=False, name=f"{name}_2_conv")
    return b.concat([x, y], name=f"{name}_concat")


def _dense_block(b: LayerGraphBuilder, x: str, blocks: int, name: str) -> str:
    for i in range(blocks):
        x = _conv_block(b, x, name=f"{name}_block{i + 1}")
    return x


def _transition_block(b: LayerGraphBuilder, x: str, name: str) -> str:
    """Keras ``transition_block``: BN-ReLU-Conv1x1(compress 0.5)-AvgPool2."""
    channels = b.shape_of(x)[-1]
    y = b.bn(x, name=f"{name}_bn")
    y = b.act(y, name=f"{name}_relu")
    y = b.conv(y, channels // 2, 1, use_bias=False, name=f"{name}_conv")
    return b.avg_pool(y, 2, strides=2, name=f"{name}_pool")


def _densenet(name: str, block_counts: List[int]) -> ComputationalGraph:
    b = LayerGraphBuilder(name)
    x = b.input((224, 224, 3), name="input_1")
    x = b.zero_pad(x, 3, name="zero_padding2d")
    x = b.conv(x, 64, 7, strides=2, padding="valid", use_bias=False, name="conv1/conv")
    x = b.bn(x, name="conv1/bn")
    x = b.act(x, name="conv1/relu")
    x = b.zero_pad(x, 1, name="zero_padding2d_1")
    x = b.max_pool(x, 3, strides=2, name="pool1")
    for stage, blocks in enumerate(block_counts, start=2):
        x = _dense_block(b, x, blocks, name=f"conv{stage}")
        if stage != len(block_counts) + 1:
            x = _transition_block(b, x, name=f"pool{stage}")
    x = b.bn(x, name="bn")
    x = b.act(x, name="relu")
    x = b.global_avg_pool(x, name="avg_pool")
    b.dense(x, 1000, activation="softmax", name="predictions")
    return b.finish()


def densenet121() -> ComputationalGraph:
    """DenseNet121 computational graph (|V| = 429)."""
    return _densenet("DenseNet121", [6, 12, 24, 16])


def densenet169() -> ComputationalGraph:
    """DenseNet169 computational graph (|V| = 597)."""
    return _densenet("DenseNet169", [6, 12, 32, 32])


def densenet201() -> ComputationalGraph:
    """DenseNet201 computational graph (|V| = 709)."""
    return _densenet("DenseNet201", [6, 12, 48, 32])
