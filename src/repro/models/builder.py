"""Keras-style functional builder for DNN layer graphs.

The paper schedules the computational graphs that the TFLite converter
extracts from Keras ImageNet models; each Keras *layer* becomes one graph
node (this is what makes Table I's node counts what they are).  The
builder below mirrors that granularity: every method appends exactly one
node, tracks the output tensor shape through real shape inference, and
derives ``param_bytes`` / ``output_bytes`` / ``macs`` from the shapes.

Parameter sizes are accounted in float32 here; the TFLite/Toco int8
quantization step lives in :mod:`repro.tpu.quantize`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import GraphError
from repro.graphs import ops
from repro.graphs.dag import ComputationalGraph
from repro.graphs.tensors import DTYPE_BYTES, TensorSpec, conv_output_hw

IntOrPair = Union[int, Tuple[int, int]]

_FLOAT_BYTES = DTYPE_BYTES["float32"]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    return (int(value[0]), int(value[1]))


class LayerGraphBuilder:
    """Builds a :class:`ComputationalGraph` one Keras-equivalent layer at a time.

    Handles are node-name strings; every layer method takes input handles
    and returns the new node's handle, exactly like the Keras functional
    API returns tensors.
    """

    def __init__(self, name: str, dtype: str = "float32") -> None:
        self.graph = ComputationalGraph(name=name)
        self._shapes: Dict[str, TensorSpec] = {}
        self._counters: Dict[str, int] = {}
        self._dtype = dtype

    # ------------------------------------------------------------------
    def shape_of(self, handle: str) -> Tuple[int, ...]:
        """Output shape of the node called ``handle``."""
        return self._shapes[handle].shape

    def _auto_name(self, prefix: str) -> str:
        count = self._counters.get(prefix, 0)
        self._counters[prefix] = count + 1
        return prefix if count == 0 else f"{prefix}_{count}"

    def _register(
        self,
        name: Optional[str],
        prefix: str,
        op_type: str,
        out_spec: TensorSpec,
        inputs: Sequence[str],
        param_count: int = 0,
        macs: int = 0,
        **attrs: object,
    ) -> str:
        node_name = name if name is not None else self._auto_name(prefix)
        self.graph.add_op(
            node_name,
            op_type=op_type,
            param_bytes=param_count * _FLOAT_BYTES,
            output_bytes=out_spec.nbytes,
            macs=macs,
            inputs=inputs,
            shape=out_spec.shape,
            **attrs,
        )
        self._shapes[node_name] = out_spec
        return node_name

    def _hwc(self, handle: str) -> Tuple[int, int, int]:
        shape = self._shapes[handle].shape
        if len(shape) != 3:
            raise GraphError(
                f"layer expects a HxWxC input, got shape {shape} from {handle!r}"
            )
        return shape  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # layers
    # ------------------------------------------------------------------
    def input(
        self, shape: Tuple[int, ...] = (224, 224, 3), name: Optional[str] = None
    ) -> str:
        """Model input tensor."""
        spec = TensorSpec(tuple(shape), self._dtype)
        return self._register(name, "input", ops.INPUT, spec, inputs=())

    def zero_pad(
        self, x: str, padding: IntOrPair = 1, name: Optional[str] = None
    ) -> str:
        """Explicit spatial zero padding (Keras ZeroPadding2D)."""
        h, w, c = self._hwc(x)
        ph, pw = _pair(padding)
        spec = TensorSpec((h + 2 * ph, w + 2 * pw, c), self._dtype)
        return self._register(name, "zero_padding2d", ops.ZERO_PAD, spec, [x])

    def conv(
        self,
        x: str,
        filters: int,
        kernel: IntOrPair,
        strides: IntOrPair = 1,
        padding: str = "same",
        use_bias: bool = True,
        name: Optional[str] = None,
    ) -> str:
        """Standard 2-D convolution."""
        h, w, c = self._hwc(x)
        kh, kw = _pair(kernel)
        sh, sw = _pair(strides)
        out_h, out_w = conv_output_hw(h, w, (kh, kw), (sh, sw), padding)
        spec = TensorSpec((out_h, out_w, filters), self._dtype)
        params = ops.conv2d_params(kh, kw, c, filters, use_bias)
        macs = ops.conv2d_macs(out_h, out_w, kh, kw, c, filters)
        return self._register(
            name, "conv2d", ops.CONV2D, spec, [x], params, macs,
            kernel=(kh, kw), strides=(sh, sw), padding=padding,
        )

    def sep_conv(
        self,
        x: str,
        filters: int,
        kernel: IntOrPair,
        strides: IntOrPair = 1,
        padding: str = "same",
        use_bias: bool = False,
        name: Optional[str] = None,
    ) -> str:
        """Separable convolution (depthwise + pointwise as one Keras layer)."""
        h, w, c = self._hwc(x)
        kh, kw = _pair(kernel)
        sh, sw = _pair(strides)
        out_h, out_w = conv_output_hw(h, w, (kh, kw), (sh, sw), padding)
        spec = TensorSpec((out_h, out_w, filters), self._dtype)
        params = ops.separable_conv2d_params(kh, kw, c, filters, use_bias)
        macs = ops.depthwise_conv2d_macs(out_h, out_w, kh, kw, c) + ops.conv2d_macs(
            out_h, out_w, 1, 1, c, filters
        )
        return self._register(
            name, "separable_conv2d", ops.SEPARABLE_CONV2D, spec, [x], params, macs,
            kernel=(kh, kw), strides=(sh, sw), padding=padding,
        )

    def bn(self, x: str, name: Optional[str] = None) -> str:
        """Batch normalization (stores 4 values per channel)."""
        spec = self._shapes[x]
        channels = spec.shape[-1]
        return self._register(
            name, "batch_normalization", ops.BATCH_NORM, spec, [x],
            ops.batch_norm_params(channels),
        )

    def act(self, x: str, fn: str = "relu", name: Optional[str] = None) -> str:
        """Element-wise activation layer."""
        spec = self._shapes[x]
        return self._register(name, "activation", ops.ACTIVATION, spec, [x], fn=fn)

    def max_pool(
        self,
        x: str,
        pool: IntOrPair,
        strides: Optional[IntOrPair] = None,
        padding: str = "valid",
        name: Optional[str] = None,
    ) -> str:
        """Spatial max pooling."""
        return self._pool(x, pool, strides, padding, name, ops.MAX_POOL, "max_pooling2d")

    def avg_pool(
        self,
        x: str,
        pool: IntOrPair,
        strides: Optional[IntOrPair] = None,
        padding: str = "valid",
        name: Optional[str] = None,
    ) -> str:
        """Spatial average pooling."""
        return self._pool(
            x, pool, strides, padding, name, ops.AVG_POOL, "average_pooling2d"
        )

    def _pool(
        self,
        x: str,
        pool: IntOrPair,
        strides: Optional[IntOrPair],
        padding: str,
        name: Optional[str],
        op_type: str,
        prefix: str,
    ) -> str:
        h, w, c = self._hwc(x)
        ph, pw = _pair(pool)
        sh, sw = _pair(strides) if strides is not None else (ph, pw)
        out_h, out_w = conv_output_hw(h, w, (ph, pw), (sh, sw), padding)
        spec = TensorSpec((out_h, out_w, c), self._dtype)
        return self._register(name, prefix, op_type, spec, [x], pool=(ph, pw))

    def global_avg_pool(self, x: str, name: Optional[str] = None) -> str:
        """Global average pooling: HxWxC -> C."""
        h, w, c = self._hwc(x)
        spec = TensorSpec((c,), self._dtype)
        return self._register(name, "avg_pool", ops.GLOBAL_AVG_POOL, spec, [x])

    def dense(
        self,
        x: str,
        units: int,
        activation: str = "linear",
        name: Optional[str] = None,
    ) -> str:
        """Fully-connected layer (flattens its input if needed)."""
        in_units = self._shapes[x].numel
        spec = TensorSpec((units,), self._dtype)
        params = ops.dense_params(in_units, units, use_bias=True)
        macs = ops.dense_macs(in_units, units)
        return self._register(
            name, "dense", ops.DENSE, spec, [x], params, macs, activation=activation
        )

    def add(self, xs: Sequence[str], name: Optional[str] = None) -> str:
        """Element-wise addition of same-shaped tensors."""
        self._check_same_shape(xs, "add")
        spec = self._shapes[xs[0]]
        return self._register(name, "add", ops.ADD, spec, list(xs))

    def scale_add(self, xs: Sequence[str], scale: float = 1.0, name: Optional[str] = None) -> str:
        """Residual scaling merge (Keras CustomScaleLayer / Lambda in
        InceptionResNetV2): ``out = xs[0] + scale * xs[1]``."""
        self._check_same_shape(xs, "scale_add")
        spec = self._shapes[xs[0]]
        return self._register(name, "custom_scale_layer", ops.SCALE, spec, list(xs), scale=scale)

    def concat(self, xs: Sequence[str], name: Optional[str] = None) -> str:
        """Channel concatenation (last axis)."""
        if len(xs) < 2:
            raise GraphError("concat needs at least two inputs")
        base = self._hwc(xs[0])
        channels = 0
        for handle in xs:
            h, w, c = self._hwc(handle)
            if (h, w) != base[:2]:
                raise GraphError(
                    f"concat spatial mismatch: {handle!r} is {h}x{w}, "
                    f"expected {base[0]}x{base[1]}"
                )
            channels += c
        spec = TensorSpec((base[0], base[1], channels), self._dtype)
        return self._register(name, "concatenate", ops.CONCAT, spec, list(xs))

    def _check_same_shape(self, xs: Sequence[str], what: str) -> None:
        if len(xs) < 2:
            raise GraphError(f"{what} needs at least two inputs")
        first = self._shapes[xs[0]].shape
        for handle in xs[1:]:
            if self._shapes[handle].shape != first:
                raise GraphError(
                    f"{what} shape mismatch: {self._shapes[handle].shape} vs {first}"
                )

    # ------------------------------------------------------------------
    def finish(self) -> ComputationalGraph:
        """Validate and return the constructed graph."""
        self.graph.assert_acyclic()
        return self.graph
