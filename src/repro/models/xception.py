"""Xception layer graph (Chollet), following keras.applications.

Table I reproduction: |V| = 134, deg(V) = 2, depth = 125.
"""

from __future__ import annotations

from repro.graphs.dag import ComputationalGraph
from repro.models.builder import LayerGraphBuilder


def xception() -> ComputationalGraph:
    """Xception computational graph (|V| = 134)."""
    b = LayerGraphBuilder("Xception")
    x = b.input((299, 299, 3), name="input_1")

    # Entry flow, block 1: two plain convolutions.
    x = b.conv(x, 32, 3, strides=2, padding="valid", use_bias=False, name="block1_conv1")
    x = b.bn(x, name="block1_conv1_bn")
    x = b.act(x, name="block1_conv1_act")
    x = b.conv(x, 64, 3, padding="valid", use_bias=False, name="block1_conv2")
    x = b.bn(x, name="block1_conv2_bn")
    x = b.act(x, name="block1_conv2_act")

    # Block 2: first separable block; no leading ReLU on the main path.
    residual = b.conv(x, 128, 1, strides=2, use_bias=False, name="conv2d")
    residual = b.bn(residual, name="batch_normalization")
    y = b.sep_conv(x, 128, 3, name="block2_sepconv1")
    y = b.bn(y, name="block2_sepconv1_bn")
    y = b.act(y, name="block2_sepconv2_act")
    y = b.sep_conv(y, 128, 3, name="block2_sepconv2")
    y = b.bn(y, name="block2_sepconv2_bn")
    y = b.max_pool(y, 3, strides=2, padding="same", name="block2_pool")
    x = b.add([y, residual], name="add")

    # Blocks 3-4: downsampling separable blocks with conv shortcuts.
    for block, filters in ((3, 256), (4, 728)):
        residual = b.conv(x, filters, 1, strides=2, use_bias=False,
                          name=f"conv2d_{block - 2}")
        residual = b.bn(residual, name=f"batch_normalization_{block - 2}")
        y = b.act(x, name=f"block{block}_sepconv1_act")
        y = b.sep_conv(y, filters, 3, name=f"block{block}_sepconv1")
        y = b.bn(y, name=f"block{block}_sepconv1_bn")
        y = b.act(y, name=f"block{block}_sepconv2_act")
        y = b.sep_conv(y, filters, 3, name=f"block{block}_sepconv2")
        y = b.bn(y, name=f"block{block}_sepconv2_bn")
        y = b.max_pool(y, 3, strides=2, padding="same", name=f"block{block}_pool")
        x = b.add([y, residual], name=f"add_{block - 2}")

    # Middle flow: eight identity separable blocks (blocks 5-12).
    for block in range(5, 13):
        y = b.act(x, name=f"block{block}_sepconv1_act")
        y = b.sep_conv(y, 728, 3, name=f"block{block}_sepconv1")
        y = b.bn(y, name=f"block{block}_sepconv1_bn")
        y = b.act(y, name=f"block{block}_sepconv2_act")
        y = b.sep_conv(y, 728, 3, name=f"block{block}_sepconv2")
        y = b.bn(y, name=f"block{block}_sepconv2_bn")
        y = b.act(y, name=f"block{block}_sepconv3_act")
        y = b.sep_conv(y, 728, 3, name=f"block{block}_sepconv3")
        y = b.bn(y, name=f"block{block}_sepconv3_bn")
        x = b.add([y, x], name=f"add_{block - 2}")

    # Exit flow, block 13: downsampling block with conv shortcut.
    residual = b.conv(x, 1024, 1, strides=2, use_bias=False, name="conv2d_3")
    residual = b.bn(residual, name="batch_normalization_3")
    y = b.act(x, name="block13_sepconv1_act")
    y = b.sep_conv(y, 728, 3, name="block13_sepconv1")
    y = b.bn(y, name="block13_sepconv1_bn")
    y = b.act(y, name="block13_sepconv2_act")
    y = b.sep_conv(y, 1024, 3, name="block13_sepconv2")
    y = b.bn(y, name="block13_sepconv2_bn")
    y = b.max_pool(y, 3, strides=2, padding="same", name="block13_pool")
    x = b.add([y, residual], name="add_11")

    # Block 14: final separable convolutions.
    x = b.sep_conv(x, 1536, 3, name="block14_sepconv1")
    x = b.bn(x, name="block14_sepconv1_bn")
    x = b.act(x, name="block14_sepconv1_act")
    x = b.sep_conv(x, 2048, 3, name="block14_sepconv2")
    x = b.bn(x, name="block14_sepconv2_bn")
    x = b.act(x, name="block14_sepconv2_act")

    x = b.global_avg_pool(x, name="avg_pool")
    b.dense(x, 1000, activation="softmax", name="predictions")
    return b.finish()
