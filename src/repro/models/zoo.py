"""Model registry and Table I statistics.

``TABLE1_EXPECTED`` pins the |V| / deg(V) / Depth values the paper reports
for its ten benchmark DNNs; tests assert the builders reproduce them
exactly.  Fig. 5 additionally evaluates ResNet50V2 and InceptionV3, so the
registry carries twelve models in total.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import GraphError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.topology import graph_depth
from repro.models.densenet import densenet121, densenet169, densenet201
from repro.models.inception import inception_resnet_v2, inception_v3
from repro.models.resnet import (
    resnet50,
    resnet50v2,
    resnet101,
    resnet101v2,
    resnet152,
    resnet152v2,
)
from repro.models.xception import xception

#: All model builders, keyed by the names the paper uses.
MODEL_BUILDERS: Dict[str, Callable[[], ComputationalGraph]] = {
    "Xception": xception,
    "ResNet50": resnet50,
    "ResNet101": resnet101,
    "ResNet152": resnet152,
    "ResNet50v2": resnet50v2,
    "ResNet101v2": resnet101v2,
    "ResNet152v2": resnet152v2,
    "DenseNet121": densenet121,
    "DenseNet169": densenet169,
    "DenseNet201": densenet201,
    "InceptionV3": inception_v3,
    "InceptionResNetV2": inception_resnet_v2,
}

#: The ten models of Table I (also the Fig. 3 / Fig. 4 workloads), with the
#: statistics the paper reports: (|V|, deg(V), Depth).
TABLE1_EXPECTED: Dict[str, Dict[str, int]] = {
    "Xception": {"num_nodes": 134, "degree": 2, "depth": 125},
    "ResNet50": {"num_nodes": 177, "degree": 2, "depth": 168},
    "ResNet101": {"num_nodes": 347, "degree": 2, "depth": 338},
    "ResNet152": {"num_nodes": 517, "degree": 2, "depth": 508},
    "DenseNet121": {"num_nodes": 429, "degree": 2, "depth": 428},
    "ResNet101v2": {"num_nodes": 379, "degree": 2, "depth": 371},
    "ResNet152v2": {"num_nodes": 566, "degree": 2, "depth": 558},
    "DenseNet169": {"num_nodes": 597, "degree": 2, "depth": 596},
    "DenseNet201": {"num_nodes": 709, "degree": 2, "depth": 708},
    "InceptionResNetV2": {"num_nodes": 782, "degree": 4, "depth": 571},
}

#: Evaluation orders used by the figures.
FIG4_MODELS: List[str] = list(TABLE1_EXPECTED)
FIG5_MODELS: List[str] = [
    "DenseNet121",
    "DenseNet169",
    "DenseNet201",
    "ResNet50",
    "ResNet101",
    "ResNet152",
    "ResNet50v2",
    "ResNet101v2",
    "InceptionResNetV2",
    "ResNet152v2",
    "InceptionV3",
    "Xception",
]


def list_models() -> List[str]:
    """Names of every model in the zoo."""
    return list(MODEL_BUILDERS)


def build_model(name: str) -> ComputationalGraph:
    """Construct the computational graph of the model called ``name``."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise GraphError(
            f"unknown model {name!r}; available: {', '.join(MODEL_BUILDERS)}"
        ) from None
    return builder()


def model_statistics(graph: ComputationalGraph) -> Dict[str, int]:
    """The Table I statistics of ``graph``: |V|, deg(V) and Depth."""
    return {
        "num_nodes": graph.num_nodes,
        "degree": graph.max_in_degree,
        "depth": graph_depth(graph),
    }
