"""ResNet v1 and v2 layer graphs (He et al.), following keras.applications.

Node counts / depths reproduce Table I of the paper exactly:

================  =====  ======  =====
model             |V|    deg(V)  depth
================  =====  ======  =====
ResNet50          177    2       168
ResNet101         347    2       338
ResNet152         517    2       508
ResNet50V2        192    2       (not in Table I; Fig. 5 uses it)
ResNet101V2       379    2       371
ResNet152V2       566    2       558
================  =====  ======  =====
"""

from __future__ import annotations

from typing import List

from repro.graphs.dag import ComputationalGraph
from repro.models.builder import LayerGraphBuilder


# ----------------------------------------------------------------------
# v1: post-activation residual blocks
# ----------------------------------------------------------------------
def _block1(
    b: LayerGraphBuilder,
    x: str,
    filters: int,
    stride: int = 1,
    conv_shortcut: bool = True,
    name: str = "",
) -> str:
    """Keras ``block1``: bottleneck residual unit with post-activation."""
    if conv_shortcut:
        shortcut = b.conv(x, 4 * filters, 1, strides=stride, name=f"{name}_0_conv")
        shortcut = b.bn(shortcut, name=f"{name}_0_bn")
    else:
        shortcut = x
    y = b.conv(x, filters, 1, strides=stride, name=f"{name}_1_conv")
    y = b.bn(y, name=f"{name}_1_bn")
    y = b.act(y, name=f"{name}_1_relu")
    y = b.conv(y, filters, 3, padding="same", name=f"{name}_2_conv")
    y = b.bn(y, name=f"{name}_2_bn")
    y = b.act(y, name=f"{name}_2_relu")
    y = b.conv(y, 4 * filters, 1, name=f"{name}_3_conv")
    y = b.bn(y, name=f"{name}_3_bn")
    y = b.add([shortcut, y], name=f"{name}_add")
    return b.act(y, name=f"{name}_out")


def _stack1(
    b: LayerGraphBuilder, x: str, filters: int, blocks: int, stride1: int = 2, name: str = ""
) -> str:
    """Keras ``stack1``: one v1 stage of ``blocks`` bottleneck units."""
    x = _block1(b, x, filters, stride=stride1, name=f"{name}_block1")
    for i in range(2, blocks + 1):
        x = _block1(b, x, filters, conv_shortcut=False, name=f"{name}_block{i}")
    return x


def _resnet_v1(name: str, block_counts: List[int]) -> ComputationalGraph:
    b = LayerGraphBuilder(name)
    x = b.input((224, 224, 3), name="input_1")
    x = b.zero_pad(x, 3, name="conv1_pad")
    x = b.conv(x, 64, 7, strides=2, padding="valid", name="conv1_conv")
    x = b.bn(x, name="conv1_bn")
    x = b.act(x, name="conv1_relu")
    x = b.zero_pad(x, 1, name="pool1_pad")
    x = b.max_pool(x, 3, strides=2, name="pool1_pool")
    for stage, (filters, blocks) in enumerate(
        zip((64, 128, 256, 512), block_counts), start=2
    ):
        stride1 = 1 if stage == 2 else 2
        x = _stack1(b, x, filters, blocks, stride1=stride1, name=f"conv{stage}")
    x = b.global_avg_pool(x, name="avg_pool")
    b.dense(x, 1000, activation="softmax", name="predictions")
    return b.finish()


def resnet50() -> ComputationalGraph:
    """ResNet50 computational graph (|V| = 177)."""
    return _resnet_v1("ResNet50", [3, 4, 6, 3])


def resnet101() -> ComputationalGraph:
    """ResNet101 computational graph (|V| = 347)."""
    return _resnet_v1("ResNet101", [3, 4, 23, 3])


def resnet152() -> ComputationalGraph:
    """ResNet152 computational graph (|V| = 517)."""
    return _resnet_v1("ResNet152", [3, 8, 36, 3])


# ----------------------------------------------------------------------
# v2: pre-activation residual blocks
# ----------------------------------------------------------------------
def _block2(
    b: LayerGraphBuilder,
    x: str,
    filters: int,
    stride: int = 1,
    conv_shortcut: bool = False,
    name: str = "",
) -> str:
    """Keras ``block2``: pre-activation bottleneck unit."""
    preact = b.bn(x, name=f"{name}_preact_bn")
    preact = b.act(preact, name=f"{name}_preact_relu")
    if conv_shortcut:
        shortcut = b.conv(preact, 4 * filters, 1, strides=stride, name=f"{name}_0_conv")
    elif stride > 1:
        shortcut = b.max_pool(x, 1, strides=stride, name=f"{name}_0_pool")
    else:
        shortcut = x
    y = b.conv(preact, filters, 1, strides=1, use_bias=False, name=f"{name}_1_conv")
    y = b.bn(y, name=f"{name}_1_bn")
    y = b.act(y, name=f"{name}_1_relu")
    y = b.zero_pad(y, 1, name=f"{name}_2_pad")
    y = b.conv(y, filters, 3, strides=stride, padding="valid", use_bias=False,
               name=f"{name}_2_conv")
    y = b.bn(y, name=f"{name}_2_bn")
    y = b.act(y, name=f"{name}_2_relu")
    y = b.conv(y, 4 * filters, 1, name=f"{name}_3_conv")
    return b.add([shortcut, y], name=f"{name}_out")


def _stack2(
    b: LayerGraphBuilder, x: str, filters: int, blocks: int, stride1: int = 2, name: str = ""
) -> str:
    """Keras ``stack2``: one v2 stage; downsampling happens in the *last* block."""
    x = _block2(b, x, filters, conv_shortcut=True, name=f"{name}_block1")
    for i in range(2, blocks):
        x = _block2(b, x, filters, name=f"{name}_block{i}")
    x = _block2(b, x, filters, stride=stride1, name=f"{name}_block{blocks}")
    return x


def _resnet_v2(name: str, block_counts: List[int]) -> ComputationalGraph:
    b = LayerGraphBuilder(name)
    x = b.input((224, 224, 3), name="input_1")
    x = b.zero_pad(x, 3, name="conv1_pad")
    x = b.conv(x, 64, 7, strides=2, padding="valid", name="conv1_conv")
    x = b.zero_pad(x, 1, name="pool1_pad")
    x = b.max_pool(x, 3, strides=2, name="pool1_pool")
    for stage, (filters, blocks) in enumerate(
        zip((64, 128, 256, 512), block_counts), start=2
    ):
        stride1 = 1 if stage == 5 else 2
        x = _stack2(b, x, filters, blocks, stride1=stride1, name=f"conv{stage}")
    x = b.bn(x, name="post_bn")
    x = b.act(x, name="post_relu")
    x = b.global_avg_pool(x, name="avg_pool")
    b.dense(x, 1000, activation="softmax", name="predictions")
    return b.finish()


def resnet50v2() -> ComputationalGraph:
    """ResNet50V2 computational graph (|V| = 192)."""
    return _resnet_v2("ResNet50V2", [3, 4, 6, 3])


def resnet101v2() -> ComputationalGraph:
    """ResNet101V2 computational graph (|V| = 379)."""
    return _resnet_v2("ResNet101V2", [3, 4, 23, 3])


def resnet152v2() -> ComputationalGraph:
    """ResNet152V2 computational graph (|V| = 566)."""
    return _resnet_v2("ResNet152V2", [3, 8, 36, 3])
