"""DNN model zoo.

Architectural graph builders for the twelve ImageNet models the paper
evaluates (Table I lists ten; Fig. 5 additionally uses ResNet50V2 and
InceptionV3).  Builders reconstruct the Keras functional layer graphs —
node counts, maximum in-degree and depth match Table I exactly — with
parameter/activation sizes derived from real tensor shapes, so the
scheduler inputs are faithful without needing TensorFlow.
"""

from repro.models.builder import LayerGraphBuilder
from repro.models.densenet import densenet121, densenet169, densenet201
from repro.models.inception import inception_resnet_v2, inception_v3
from repro.models.resnet import (
    resnet50,
    resnet50v2,
    resnet101,
    resnet101v2,
    resnet152,
    resnet152v2,
)
from repro.models.xception import xception
from repro.models.zoo import (
    MODEL_BUILDERS,
    TABLE1_EXPECTED,
    build_model,
    list_models,
    model_statistics,
)

__all__ = [
    "LayerGraphBuilder",
    "MODEL_BUILDERS",
    "TABLE1_EXPECTED",
    "build_model",
    "densenet121",
    "densenet169",
    "densenet201",
    "inception_resnet_v2",
    "inception_v3",
    "list_models",
    "model_statistics",
    "resnet50",
    "resnet50v2",
    "resnet101",
    "resnet101v2",
    "resnet152",
    "resnet152v2",
    "xception",
]
