"""Inception-family layer graphs, following keras.applications.

``inception_resnet_v2`` reproduces Table I exactly: |V| = 782,
deg(V) = 4 (the four-way branch concatenations), depth = 571.
``inception_v3`` is used by the Fig. 5 gap-to-optimal experiment.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.dag import ComputationalGraph
from repro.models.builder import IntOrPair, LayerGraphBuilder


def _conv_bn(
    b: LayerGraphBuilder,
    x: str,
    filters: int,
    kernel: IntOrPair,
    strides: IntOrPair = 1,
    padding: str = "same",
    activation: Optional[str] = "relu",
    use_bias: bool = False,
    name: Optional[str] = None,
) -> str:
    """Keras ``conv2d_bn``: Conv2D (+BN when bias-free) (+Activation)."""
    x = b.conv(x, filters, kernel, strides=strides, padding=padding,
               use_bias=use_bias, name=name)
    if not use_bias:
        x = b.bn(x, name=f"{name}_bn" if name else None)
    if activation is not None:
        x = b.act(x, fn=activation, name=f"{name}_ac" if name else None)
    return x


# ----------------------------------------------------------------------
# InceptionResNetV2
# ----------------------------------------------------------------------
def _inception_resnet_block(
    b: LayerGraphBuilder,
    x: str,
    scale: float,
    block_type: str,
    block_idx: int,
    activation: Optional[str] = "relu",
) -> str:
    """Keras ``inception_resnet_block`` (block35 / block17 / block8)."""
    prefix = f"{block_type}_{block_idx}"
    if block_type == "block35":
        branch0 = _conv_bn(b, x, 32, 1, name=f"{prefix}_b0_conv")
        branch1 = _conv_bn(b, x, 32, 1, name=f"{prefix}_b1_conv1")
        branch1 = _conv_bn(b, branch1, 32, 3, name=f"{prefix}_b1_conv2")
        branch2 = _conv_bn(b, x, 32, 1, name=f"{prefix}_b2_conv1")
        branch2 = _conv_bn(b, branch2, 48, 3, name=f"{prefix}_b2_conv2")
        branch2 = _conv_bn(b, branch2, 64, 3, name=f"{prefix}_b2_conv3")
        branches = [branch0, branch1, branch2]
    elif block_type == "block17":
        branch0 = _conv_bn(b, x, 192, 1, name=f"{prefix}_b0_conv")
        branch1 = _conv_bn(b, x, 128, 1, name=f"{prefix}_b1_conv1")
        branch1 = _conv_bn(b, branch1, 160, (1, 7), name=f"{prefix}_b1_conv2")
        branch1 = _conv_bn(b, branch1, 192, (7, 1), name=f"{prefix}_b1_conv3")
        branches = [branch0, branch1]
    elif block_type == "block8":
        branch0 = _conv_bn(b, x, 192, 1, name=f"{prefix}_b0_conv")
        branch1 = _conv_bn(b, x, 192, 1, name=f"{prefix}_b1_conv1")
        branch1 = _conv_bn(b, branch1, 224, (1, 3), name=f"{prefix}_b1_conv2")
        branch1 = _conv_bn(b, branch1, 256, (3, 1), name=f"{prefix}_b1_conv3")
        branches = [branch0, branch1]
    else:
        raise ValueError(f"unknown inception-resnet block type {block_type!r}")

    mixed = b.concat(branches, name=f"{prefix}_mixed")
    channels = b.shape_of(x)[-1]
    # The "up" projection is a biased conv with neither BN nor activation.
    up = _conv_bn(b, mixed, channels, 1, activation=None, use_bias=True,
                  name=f"{prefix}_conv")
    x = b.scale_add([x, up], scale=scale, name=prefix)
    if activation is not None:
        x = b.act(x, fn=activation, name=f"{prefix}_ac")
    return x


def inception_resnet_v2() -> ComputationalGraph:
    """InceptionResNetV2 computational graph (|V| = 782, deg = 4, depth = 571)."""
    b = LayerGraphBuilder("InceptionResNetV2")
    x = b.input((299, 299, 3), name="input_1")

    # Stem.
    x = _conv_bn(b, x, 32, 3, strides=2, padding="valid", name="conv2d_1")
    x = _conv_bn(b, x, 32, 3, padding="valid", name="conv2d_2")
    x = _conv_bn(b, x, 64, 3, name="conv2d_3")
    x = b.max_pool(x, 3, strides=2, name="max_pooling2d")
    x = _conv_bn(b, x, 80, 1, padding="valid", name="conv2d_4")
    x = _conv_bn(b, x, 192, 3, padding="valid", name="conv2d_5")
    x = b.max_pool(x, 3, strides=2, name="max_pooling2d_1")

    # mixed_5b (Inception-A): 35x35x320, the deg(V)=4 concatenation.
    branch0 = _conv_bn(b, x, 96, 1, name="mixed_5b_b0")
    branch1 = _conv_bn(b, x, 48, 1, name="mixed_5b_b1_conv1")
    branch1 = _conv_bn(b, branch1, 64, 5, name="mixed_5b_b1_conv2")
    branch2 = _conv_bn(b, x, 64, 1, name="mixed_5b_b2_conv1")
    branch2 = _conv_bn(b, branch2, 96, 3, name="mixed_5b_b2_conv2")
    branch2 = _conv_bn(b, branch2, 96, 3, name="mixed_5b_b2_conv3")
    branch_pool = b.avg_pool(x, 3, strides=1, padding="same", name="average_pooling2d")
    branch_pool = _conv_bn(b, branch_pool, 64, 1, name="mixed_5b_bp_conv")
    x = b.concat([branch0, branch1, branch2, branch_pool], name="mixed_5b")

    # 10x block35.
    for idx in range(1, 11):
        x = _inception_resnet_block(b, x, scale=0.17, block_type="block35", block_idx=idx)

    # mixed_6a (Reduction-A): 17x17x1088.
    branch0 = _conv_bn(b, x, 384, 3, strides=2, padding="valid", name="mixed_6a_b0")
    branch1 = _conv_bn(b, x, 256, 1, name="mixed_6a_b1_conv1")
    branch1 = _conv_bn(b, branch1, 256, 3, name="mixed_6a_b1_conv2")
    branch1 = _conv_bn(b, branch1, 384, 3, strides=2, padding="valid", name="mixed_6a_b1_conv3")
    branch_pool = b.max_pool(x, 3, strides=2, name="max_pooling2d_2")
    x = b.concat([branch0, branch1, branch_pool], name="mixed_6a")

    # 20x block17.
    for idx in range(1, 21):
        x = _inception_resnet_block(b, x, scale=0.1, block_type="block17", block_idx=idx)

    # mixed_7a (Reduction-B): 8x8x2080.
    branch0 = _conv_bn(b, x, 256, 1, name="mixed_7a_b0_conv1")
    branch0 = _conv_bn(b, branch0, 384, 3, strides=2, padding="valid", name="mixed_7a_b0_conv2")
    branch1 = _conv_bn(b, x, 256, 1, name="mixed_7a_b1_conv1")
    branch1 = _conv_bn(b, branch1, 288, 3, strides=2, padding="valid", name="mixed_7a_b1_conv2")
    branch2 = _conv_bn(b, x, 256, 1, name="mixed_7a_b2_conv1")
    branch2 = _conv_bn(b, branch2, 288, 3, name="mixed_7a_b2_conv2")
    branch2 = _conv_bn(b, branch2, 320, 3, strides=2, padding="valid", name="mixed_7a_b2_conv3")
    branch_pool = b.max_pool(x, 3, strides=2, name="max_pooling2d_3")
    x = b.concat([branch0, branch1, branch2, branch_pool], name="mixed_7a")

    # 9x block8 with activation + final activation-free block8 at scale 1.
    for idx in range(1, 10):
        x = _inception_resnet_block(b, x, scale=0.2, block_type="block8", block_idx=idx)
    x = _inception_resnet_block(
        b, x, scale=1.0, block_type="block8", block_idx=10, activation=None
    )

    x = _conv_bn(b, x, 1536, 1, name="conv_7b")
    x = b.global_avg_pool(x, name="avg_pool")
    b.dense(x, 1000, activation="softmax", name="predictions")
    return b.finish()


# ----------------------------------------------------------------------
# InceptionV3
# ----------------------------------------------------------------------
def inception_v3() -> ComputationalGraph:
    """InceptionV3 computational graph (Fig. 5 workload)."""
    b = LayerGraphBuilder("InceptionV3")
    x = b.input((299, 299, 3), name="input_1")

    x = _conv_bn(b, x, 32, 3, strides=2, padding="valid", name="conv2d")
    x = _conv_bn(b, x, 32, 3, padding="valid", name="conv2d_1")
    x = _conv_bn(b, x, 64, 3, name="conv2d_2")
    x = b.max_pool(x, 3, strides=2, name="max_pooling2d")
    x = _conv_bn(b, x, 80, 1, padding="valid", name="conv2d_3")
    x = _conv_bn(b, x, 192, 3, padding="valid", name="conv2d_4")
    x = b.max_pool(x, 3, strides=2, name="max_pooling2d_1")

    # mixed 0-2 (Inception-A at 35x35).
    for i, pool_filters in enumerate((32, 64, 64)):
        prefix = f"mixed{i}"
        branch1x1 = _conv_bn(b, x, 64, 1, name=f"{prefix}_b1x1")
        branch5x5 = _conv_bn(b, x, 48, 1, name=f"{prefix}_b5x5_1")
        branch5x5 = _conv_bn(b, branch5x5, 64, 5, name=f"{prefix}_b5x5_2")
        branch3x3 = _conv_bn(b, x, 64, 1, name=f"{prefix}_b3x3dbl_1")
        branch3x3 = _conv_bn(b, branch3x3, 96, 3, name=f"{prefix}_b3x3dbl_2")
        branch3x3 = _conv_bn(b, branch3x3, 96, 3, name=f"{prefix}_b3x3dbl_3")
        branch_pool = b.avg_pool(x, 3, strides=1, padding="same", name=f"{prefix}_pool")
        branch_pool = _conv_bn(b, branch_pool, pool_filters, 1, name=f"{prefix}_bpool")
        x = b.concat([branch1x1, branch5x5, branch3x3, branch_pool], name=prefix)

    # mixed 3 (Reduction at 17x17).
    branch3x3 = _conv_bn(b, x, 384, 3, strides=2, padding="valid", name="mixed3_b3x3")
    branchdbl = _conv_bn(b, x, 64, 1, name="mixed3_bdbl_1")
    branchdbl = _conv_bn(b, branchdbl, 96, 3, name="mixed3_bdbl_2")
    branchdbl = _conv_bn(b, branchdbl, 96, 3, strides=2, padding="valid", name="mixed3_bdbl_3")
    branch_pool = b.max_pool(x, 3, strides=2, name="max_pooling2d_2")
    x = b.concat([branch3x3, branchdbl, branch_pool], name="mixed3")

    # mixed 4-7 (Inception-B with factorized 7x7 convolutions).
    for i, width in enumerate((128, 160, 160, 192), start=4):
        prefix = f"mixed{i}"
        branch1x1 = _conv_bn(b, x, 192, 1, name=f"{prefix}_b1x1")
        branch7x7 = _conv_bn(b, x, width, 1, name=f"{prefix}_b7x7_1")
        branch7x7 = _conv_bn(b, branch7x7, width, (1, 7), name=f"{prefix}_b7x7_2")
        branch7x7 = _conv_bn(b, branch7x7, 192, (7, 1), name=f"{prefix}_b7x7_3")
        branchdbl = _conv_bn(b, x, width, 1, name=f"{prefix}_bdbl_1")
        branchdbl = _conv_bn(b, branchdbl, width, (7, 1), name=f"{prefix}_bdbl_2")
        branchdbl = _conv_bn(b, branchdbl, width, (1, 7), name=f"{prefix}_bdbl_3")
        branchdbl = _conv_bn(b, branchdbl, width, (7, 1), name=f"{prefix}_bdbl_4")
        branchdbl = _conv_bn(b, branchdbl, 192, (1, 7), name=f"{prefix}_bdbl_5")
        branch_pool = b.avg_pool(x, 3, strides=1, padding="same", name=f"{prefix}_pool")
        branch_pool = _conv_bn(b, branch_pool, 192, 1, name=f"{prefix}_bpool")
        x = b.concat([branch1x1, branch7x7, branchdbl, branch_pool], name=prefix)

    # mixed 8 (Reduction at 8x8).
    branch3x3 = _conv_bn(b, x, 192, 1, name="mixed8_b3x3_1")
    branch3x3 = _conv_bn(b, branch3x3, 320, 3, strides=2, padding="valid", name="mixed8_b3x3_2")
    branch7x7 = _conv_bn(b, x, 192, 1, name="mixed8_b7x7_1")
    branch7x7 = _conv_bn(b, branch7x7, 192, (1, 7), name="mixed8_b7x7_2")
    branch7x7 = _conv_bn(b, branch7x7, 192, (7, 1), name="mixed8_b7x7_3")
    branch7x7 = _conv_bn(b, branch7x7, 192, 3, strides=2, padding="valid", name="mixed8_b7x7_4")
    branch_pool = b.max_pool(x, 3, strides=2, name="max_pooling2d_3")
    x = b.concat([branch3x3, branch7x7, branch_pool], name="mixed8")

    # mixed 9-10 (Inception-C with channel-split branches).
    for i in range(2):
        prefix = f"mixed{9 + i}"
        branch1x1 = _conv_bn(b, x, 320, 1, name=f"{prefix}_b1x1")
        branch3x3 = _conv_bn(b, x, 384, 1, name=f"{prefix}_b3x3_0")
        branch3x3_1 = _conv_bn(b, branch3x3, 384, (1, 3), name=f"{prefix}_b3x3_1")
        branch3x3_2 = _conv_bn(b, branch3x3, 384, (3, 1), name=f"{prefix}_b3x3_2")
        branch3x3 = b.concat([branch3x3_1, branch3x3_2], name=f"mixed9_{i}")
        branchdbl = _conv_bn(b, x, 448, 1, name=f"{prefix}_bdbl_0")
        branchdbl = _conv_bn(b, branchdbl, 384, 3, name=f"{prefix}_bdbl_1")
        branchdbl_1 = _conv_bn(b, branchdbl, 384, (1, 3), name=f"{prefix}_bdbl_2")
        branchdbl_2 = _conv_bn(b, branchdbl, 384, (3, 1), name=f"{prefix}_bdbl_3")
        branchdbl = b.concat([branchdbl_1, branchdbl_2], name=f"concatenate_{i}")
        branch_pool = b.avg_pool(x, 3, strides=1, padding="same", name=f"{prefix}_pool")
        branch_pool = _conv_bn(b, branch_pool, 192, 1, name=f"{prefix}_bpool")
        x = b.concat([branch1x1, branch3x3, branchdbl, branch_pool], name=prefix)

    x = b.global_avg_pool(x, name="avg_pool")
    b.dense(x, 1000, activation="softmax", name="predictions")
    return b.finish()
