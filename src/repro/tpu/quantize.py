"""TFLite/Toco-style int8 quantization model.

The paper's deployment flow quantizes TensorFlow models with the Toco
converter before the Edge TPU compiler sees them (Step 4 in Fig. 1a).
For scheduling, the observable effect is on tensor *sizes*: float32
parameters shrink 4x to int8 plus small per-tensor calibration metadata
(scale/zero-point pairs, per output channel for conv weights), and
activations shrink 4x as well.  MAC counts are unchanged.
"""

from __future__ import annotations

from repro.graphs import ops
from repro.graphs.dag import ComputationalGraph
from repro.graphs.tensors import DTYPE_BYTES

#: Per-channel calibration metadata: one float32 scale + one int32
#: zero-point per output channel, stored alongside the weights.
_PER_CHANNEL_OVERHEAD_BYTES = 8
#: Flat per-tensor overhead for TFLite tensor headers.
_PER_TENSOR_OVERHEAD_BYTES = 64


def _quantized_param_bytes(node_param_bytes: int, channels: int) -> int:
    if node_param_bytes == 0:
        return 0
    weights = node_param_bytes // DTYPE_BYTES["float32"]  # element count
    return (
        weights
        + channels * _PER_CHANNEL_OVERHEAD_BYTES
        + _PER_TENSOR_OVERHEAD_BYTES
    )


def quantize_graph(
    graph: ComputationalGraph, activation_dtype: str = "int8"
) -> ComputationalGraph:
    """Return an int8-quantized copy of ``graph``.

    Parameter bytes become one byte per element plus calibration
    overhead; activation bytes are scaled by the dtype ratio.  The result
    carries ``attrs["quantized"] = True`` on every node so downstream
    stages can assert they received a converted model.
    """
    ratio = DTYPE_BYTES[activation_dtype] / DTYPE_BYTES["float32"]
    out = ComputationalGraph(name=f"{graph.name}_int8")
    for node in graph.nodes:
        channels = _output_channels(node)
        quantized = node.copy()
        quantized.param_bytes = _quantized_param_bytes(node.param_bytes, channels)
        quantized.output_bytes = max(1, int(node.output_bytes * ratio))
        quantized.attrs["quantized"] = True
        out.add_node(quantized)
    for src, dst in graph.edges():
        out.add_edge(src, dst)
    return out


def is_quantized(graph: ComputationalGraph) -> bool:
    """True iff every node went through :func:`quantize_graph`."""
    return all(node.attrs.get("quantized") for node in graph.nodes)


def _output_channels(node) -> int:
    """Best-effort output-channel count for per-channel quantization."""
    if node.op_type not in ops.PARAMETRIC_OPS:
        return 0
    shape = node.attrs.get("shape")
    if isinstance(shape, (tuple, list)) and shape:
        return int(shape[-1])
    # Fall back to a conservative estimate: BN stores 4 floats/channel,
    # conv/dense weight tensors rarely have fewer than 16 channels.
    if node.op_type == ops.BATCH_NORM:
        return max(1, node.param_bytes // (4 * DTYPE_BYTES["float32"]))
    return 16


__all__ = ["quantize_graph", "is_quantized"]
