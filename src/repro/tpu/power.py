"""Energy-efficiency estimation for the pipelined Edge TPU system.

The paper's Fig. 2 testbed includes an energy-efficiency evaluation rig;
this module provides the corresponding model: per-device active/idle
power (the Coral USB Accelerator draws ~2 W under load), host controller
power, and per-byte USB transfer energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import DeploymentError
from repro.tpu.pipeline import PipelineReport


@dataclass(frozen=True)
class PowerModel:
    """Power parameters of the evaluation system (watts / joules)."""

    tpu_active_watts: float = 2.0
    tpu_idle_watts: float = 0.5
    host_watts: float = 2.5
    usb_joules_per_byte: float = 5e-9

    def __post_init__(self) -> None:
        if min(
            self.tpu_active_watts,
            self.tpu_idle_watts,
            self.host_watts,
            self.usb_joules_per_byte,
        ) < 0:
            raise DeploymentError("power parameters must be non-negative")


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one simulated run."""

    total_joules: float
    joules_per_inference: float
    breakdown: Dict[str, float]


def estimate_energy(
    report: PipelineReport, power: PowerModel = PowerModel()
) -> EnergyReport:
    """Estimate total energy of a simulated pipeline run.

    Device energy splits busy time at active power from idle time at idle
    power; the host runs for the whole makespan; USB energy scales with
    the bytes moved (transfers + weight streaming, both already reflected
    in ``bus_busy_seconds`` -> converted back through the byte model is
    unnecessary since profiles carry the byte counts).
    """
    makespan = report.makespan_seconds
    device_active = 0.0
    device_idle = 0.0
    for busy in report.stage_busy_seconds:
        device_active += busy * power.tpu_active_watts
        device_idle += max(0.0, makespan - busy) * power.tpu_idle_watts
    host = makespan * power.host_watts
    bytes_moved = report.num_inferences * sum(
        p.input_bytes + p.output_bytes + p.off_chip_bytes for p in report.profiles
    )
    usb = bytes_moved * power.usb_joules_per_byte
    total = device_active + device_idle + host + usb
    return EnergyReport(
        total_joules=total,
        # An empty run (e.g. an idle fleet replica) still burns idle/host
        # energy but has no inferences to amortize it over.
        joules_per_inference=(
            total / report.num_inferences if report.num_inferences else 0.0
        ),
        breakdown={
            "tpu_active": device_active,
            "tpu_idle": device_idle,
            "host": host,
            "usb": usb,
        },
    )
