"""Edge TPU device and interconnect specifications.

Numbers follow the published Coral USB Accelerator datasheet and the
empirical characterization of Boroumand et al. (reference [3] of the
paper): 4 TOPS int8 peak (= 2e12 MAC/s), ~8 MiB of on-chip parameter
SRAM (of which ~7.7 MiB is usable for weights), and USB 3.0 with an
effective goodput far below the 5 Gb/s line rate once protocol overheads
and the host controller are accounted for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import DeploymentError
from repro.graphs import ops


@dataclass(frozen=True)
class UsbSpec:
    """USB 3.0 link/host-controller model.

    ``bandwidth_bytes_per_s`` is effective goodput; every transfer also
    pays ``per_transfer_latency_s`` of scheduling/turnaround latency —
    small transfers are latency-bound, which penalizes chatty pipelines.
    """

    bandwidth_bytes_per_s: float = 320e6
    per_transfer_latency_s: float = 1.5e-4

    def transfer_seconds(self, nbytes: int) -> float:
        """Bus occupancy of a single ``nbytes`` transfer."""
        if nbytes < 0:
            raise DeploymentError("transfer size must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.per_transfer_latency_s + nbytes / self.bandwidth_bytes_per_s


#: Fraction of the systolic array's peak MAC rate that each compute op
#: kind actually sustains (utilization factors measured by [3] are in
#: this ballpark: dense convolutions run near half of peak, depthwise
#: layers are heavily underutilized, fully-connected layers are
#: weight-bandwidth-bound).
_DEFAULT_UTILIZATION: Dict[str, float] = {
    ops.CONV2D: 0.50,
    ops.SEPARABLE_CONV2D: 0.20,
    ops.DEPTHWISE_CONV2D: 0.08,
    ops.DENSE: 0.25,
}


@dataclass(frozen=True)
class EdgeTPUSpec:
    """One Coral Edge TPU device.

    Attributes
    ----------
    sram_bytes:
        On-chip parameter cache capacity usable for weights.
    peak_macs_per_s:
        Systolic-array peak (4 TOPS int8 = 2e12 MAC/s).
    utilization:
        Per-op-kind sustained fraction of peak.
    elementwise_bytes_per_s:
        Throughput of element-wise / data-movement ops (bytes of output
        produced per second); these run on the on-chip vector units.
    weight_stream_overhead:
        Multiplier (>1) on off-chip weight streaming time, covering
        descriptor and re-layout overheads observed on real devices.
    usb:
        Link model to the host.
    """

    name: str = "coral_usb"
    sram_bytes: int = 8_060_928  # 7.6875 MiB usable of the 8 MiB SRAM
    peak_macs_per_s: float = 2.0e12
    utilization: Dict[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_UTILIZATION)
    )
    elementwise_bytes_per_s: float = 32.0e9
    weight_stream_overhead: float = 1.15
    usb: UsbSpec = field(default_factory=UsbSpec)

    def __post_init__(self) -> None:
        if self.sram_bytes <= 0:
            raise DeploymentError("sram_bytes must be positive")
        if self.peak_macs_per_s <= 0:
            raise DeploymentError("peak_macs_per_s must be positive")
        if self.elementwise_bytes_per_s <= 0:
            raise DeploymentError("elementwise_bytes_per_s must be positive")
        if self.weight_stream_overhead < 1.0:
            raise DeploymentError("weight_stream_overhead must be >= 1")

    def sustained_macs_per_s(self, op_type: str) -> float:
        """Effective MAC rate for ``op_type`` (falls back to dense-conv)."""
        factor = self.utilization.get(op_type, self.utilization.get(ops.CONV2D, 0.5))
        return self.peak_macs_per_s * factor


def default_spec() -> EdgeTPUSpec:
    """The Coral USB Accelerator configuration used by all experiments."""
    return EdgeTPUSpec()
