"""Per-operator and per-stage latency model.

Follows the empirical Edge TPU characterization of Boroumand et al. [3]:
compute ops are bounded by the systolic array's sustained MAC rate for
their kind, element-wise ops by on-chip data-movement throughput, and
off-chip parameters by USB streaming — the dominant term whenever a
stage's weights overflow SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graphs import ops
from repro.graphs.dag import ComputationalGraph, OpNode
from repro.tpu.caching import CachingPlan
from repro.tpu.spec import EdgeTPUSpec


def op_compute_seconds(node: OpNode, spec: EdgeTPUSpec) -> float:
    """On-device execution time of a single operator (weights resident)."""
    if node.op_type in ops.COMPUTE_OPS and node.macs:
        return node.macs / spec.sustained_macs_per_s(node.op_type)
    if node.op_type == ops.INPUT:
        return 0.0
    # Element-wise / pooling / padding: data-movement bound.
    return node.output_bytes / spec.elementwise_bytes_per_s


def weight_stream_seconds(off_chip_bytes: int, spec: EdgeTPUSpec) -> float:
    """Per-inference USB time to stream this stage's off-chip weights."""
    if off_chip_bytes == 0:
        return 0.0
    raw = spec.usb.transfer_seconds(off_chip_bytes)
    return raw * spec.weight_stream_overhead


@dataclass(frozen=True)
class StageLatency:
    """Latency decomposition of one pipeline stage per inference."""

    compute_seconds: float
    weight_stream_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.weight_stream_seconds


def profile_stage(
    graph: ComputationalGraph,
    stage_nodes: Sequence[str],
    caching_plan: CachingPlan,
    spec: EdgeTPUSpec,
) -> StageLatency:
    """Aggregate latency of one stage given its parameter-cache plan."""
    compute = sum(op_compute_seconds(graph.node(n), spec) for n in stage_nodes)
    streaming = weight_stream_seconds(caching_plan.off_chip_total, spec)
    return StageLatency(compute_seconds=compute, weight_stream_seconds=streaming)
