"""On-chip parameter-cache allocation.

The Edge TPU compiler assigns model parameters to the device's SRAM in
*execution order* until the cache is full; everything that does not fit
is fetched from the host over USB on every single inference ("off-chip
parameters" — the parameter-caching values Fig. 5 aggregates).  The
allocator below reproduces this greedy whole-tensor policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import DeploymentError
from repro.graphs.dag import ComputationalGraph


@dataclass
class CachingPlan:
    """Outcome of allocating one stage's parameters to its TPU's SRAM.

    Attributes
    ----------
    on_chip:
        Bytes resident in SRAM per node.
    off_chip:
        Bytes streamed from the host per inference per node.
    """

    on_chip: Dict[str, int] = field(default_factory=dict)
    off_chip: Dict[str, int] = field(default_factory=dict)

    @property
    def on_chip_total(self) -> int:
        return sum(self.on_chip.values())

    @property
    def off_chip_total(self) -> int:
        return sum(self.off_chip.values())

    @property
    def total(self) -> int:
        return self.on_chip_total + self.off_chip_total

    def fits_entirely(self) -> bool:
        """True iff every parameter is cached on-chip."""
        return self.off_chip_total == 0


def allocate_parameter_cache(
    graph: ComputationalGraph,
    stage_nodes: Sequence[str],
    sram_bytes: int,
    order: Optional[Sequence[str]] = None,
) -> CachingPlan:
    """Greedy whole-tensor first-fit allocation in execution order.

    Parameters
    ----------
    graph:
        The (quantized) computational graph.
    stage_nodes:
        Node names assigned to this pipeline stage.
    sram_bytes:
        Usable SRAM capacity of the stage's device.
    order:
        Execution order to allocate in; defaults to the graph's
        topological order restricted to ``stage_nodes``.
    """
    if sram_bytes < 0:
        raise DeploymentError("sram_bytes must be non-negative")
    members = set(stage_nodes)
    if order is None:
        order = [n for n in graph.topological_order() if n in members]
    else:
        order = [n for n in order if n in members]
        if len(order) != len(members):
            raise DeploymentError(
                "caching order must cover every stage node exactly once"
            )
    plan = CachingPlan()
    remaining = sram_bytes
    for name in order:
        param_bytes = graph.node(name).param_bytes
        if param_bytes == 0:
            continue
        if param_bytes <= remaining:
            plan.on_chip[name] = param_bytes
            remaining -= param_bytes
        else:
            # Whole-tensor granularity: a tensor that does not fit is
            # streamed in full (the compiler does not split weight
            # tensors between SRAM and host memory).
            plan.off_chip[name] = param_bytes
    return plan
