"""Discrete-event simulation of a multi-stage pipelined Edge TPU system.

Models the paper's Fig. 2 testbed: ``n`` Coral Edge TPUs driven by one
host over USB 3.0.  Every inference flows stage 0 -> 1 -> ... -> n-1;
between stages, activations travel device -> host -> device, and any
stage whose parameters overflow its 8 MiB SRAM must stream the remainder
from the host before computing.

Two interconnect topologies are supported:

``per_stage`` (default)
    Each TPU hangs off its own host-controller port (the Fig. 2 rig uses
    a bank of USB hubs on a multi-controller workstation), so stage ``k``
    owns a dedicated link carrying its input tensors, weight streaming
    and output tensors.
``shared``
    A single host controller serializes *every* transfer in the system —
    the worst-case topology, kept for the bus-contention ablation.  Under
    heavy weight streaming the whole pipeline collapses onto the bus,
    which is precisely the effect the ablation demonstrates.

In both modes weight streaming blocks the stage's device (no weight
double-buffering on Edge TPUs), which creates the platform's famous
cache-overflow cost cliff.  Neither the exact ILP nor RESPECT models
link arbitration or per-transfer latency, so simulated runtime and the
abstract objective can disagree — reproducing the paper's "performance
modeling miscorrelation" observation.

The simulator advances inference state machines in ready-time order, so
link grants are FIFO in true time.  Per-stage phase durations come from
:mod:`repro.tpu.latency` and :mod:`repro.tpu.caching`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import DeploymentError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.schedule import Schedule
from repro.tpu.caching import CachingPlan, allocate_parameter_cache
from repro.tpu.latency import op_compute_seconds, weight_stream_seconds
from repro.tpu.spec import EdgeTPUSpec, default_spec

_BUS_MODES = ("per_stage", "shared")


@dataclass(frozen=True)
class StageProfile:
    """Per-inference workload of one pipeline stage.

    All quantities are identical across inferences, so they are computed
    once from the schedule and reused by the event simulation.
    """

    stage: int
    compute_seconds: float
    weight_stream_seconds: float
    input_bytes: int
    output_bytes: int
    input_transfer_seconds: float
    output_transfer_seconds: float
    on_chip_bytes: int
    off_chip_bytes: int

    @property
    def device_seconds(self) -> float:
        """Device occupancy per inference (weights stream + compute)."""
        return self.weight_stream_seconds + self.compute_seconds

    @property
    def link_seconds(self) -> float:
        """Link occupancy per inference caused by this stage."""
        return (
            self.input_transfer_seconds
            + self.weight_stream_seconds
            + self.output_transfer_seconds
        )


@dataclass
class PipelineReport:
    """Outcome of simulating ``num_inferences`` through the pipeline."""

    num_inferences: int
    makespan_seconds: float
    throughput_per_second: float
    #: Mean per-inference sojourn time: completion minus *admission* (the
    #: instant the host hands the inference to the pipeline).  Under
    #: steady pipelining this approaches the sum of per-stage times plus
    #: queueing — a different quantity from the throughput-style
    #: :attr:`seconds_per_inference` (makespan / count).
    mean_latency_seconds: float
    steady_period_seconds: float
    stage_busy_seconds: List[float]
    bus_busy_seconds: float
    bottleneck: str
    bus_mode: str = "per_stage"
    profiles: List[StageProfile] = field(default_factory=list)

    @property
    def seconds_per_inference(self) -> float:
        """Average wall time per inference — the Fig. 4 quantity."""
        return self.makespan_seconds / self.num_inferences

    @property
    def bus_utilization(self) -> float:
        """Aggregate link busy fraction (shared mode: the one bus)."""
        if self.makespan_seconds == 0:
            return 0.0
        return self.bus_busy_seconds / self.makespan_seconds


def compute_stage_profiles(
    graph: ComputationalGraph,
    schedule: Schedule,
    spec: EdgeTPUSpec,
    caching_plans: Optional[List[CachingPlan]] = None,
) -> List[StageProfile]:
    """Derive every stage's per-inference phase durations from a schedule."""
    if schedule.graph is not graph and schedule.graph.node_names != graph.node_names:
        raise DeploymentError("schedule does not belong to the supplied graph")
    num_stages = schedule.num_stages
    stages = schedule.stages()
    if caching_plans is None:
        caching_plans = [
            allocate_parameter_cache(graph, stage_nodes, spec.sram_bytes)
            for stage_nodes in stages
        ]
    if len(caching_plans) != num_stages:
        raise DeploymentError("one caching plan per stage is required")

    profiles: List[StageProfile] = []
    assignment = schedule.assignment
    for k, stage_nodes in enumerate(stages):
        compute = sum(op_compute_seconds(graph.node(n), spec) for n in stage_nodes)
        plan = caching_plans[k]
        stream = weight_stream_seconds(plan.off_chip_total, spec)

        # Host -> device: tensors produced strictly earlier that some node
        # of this stage consumes (deduplicated per producer), plus the
        # model input image for stage 0 (its source node lives here).
        in_bytes = 0
        producers_seen = set()
        for name in stage_nodes:
            for parent in graph.parents(name):
                if assignment[parent] < k and parent not in producers_seen:
                    producers_seen.add(parent)
                    in_bytes += graph.node(parent).output_bytes
        if k == 0:
            in_bytes += sum(
                graph.node(s).output_bytes
                for s in graph.sources
                if assignment[s] == 0
            )

        # Device -> host: tensors produced here that later stages (or the
        # host, for model outputs) consume — sent to the host once each.
        out_bytes = 0
        for name in stage_nodes:
            node = graph.node(name)
            children = graph.children(name)
            crosses = any(assignment[c] > k for c in children)
            is_model_output = not children
            if crosses or is_model_output:
                out_bytes += node.output_bytes

        profiles.append(
            StageProfile(
                stage=k,
                compute_seconds=compute,
                weight_stream_seconds=stream,
                input_bytes=in_bytes,
                output_bytes=out_bytes,
                input_transfer_seconds=spec.usb.transfer_seconds(in_bytes),
                output_transfer_seconds=spec.usb.transfer_seconds(out_bytes),
                on_chip_bytes=plan.on_chip_total,
                off_chip_bytes=plan.off_chip_total,
            )
        )
    return profiles


class PipelinedTpuSystem:
    """Event-driven simulator of the central-hosted Edge TPU pipeline.

    Parameters
    ----------
    spec:
        Device/link specification (defaults to the Coral USB accelerator).
    bus_mode:
        ``"per_stage"`` (dedicated link per TPU, default) or ``"shared"``
        (one host controller serializes all transfers).
    """

    def __init__(
        self, spec: Optional[EdgeTPUSpec] = None, bus_mode: str = "per_stage"
    ) -> None:
        if bus_mode not in _BUS_MODES:
            raise DeploymentError(
                f"unknown bus_mode {bus_mode!r}; choose from {_BUS_MODES}"
            )
        self.spec = spec or default_spec()
        self.bus_mode = bus_mode

    # ------------------------------------------------------------------
    def run(
        self,
        graph: ComputationalGraph,
        schedule: Schedule,
        num_inferences: int = 1000,
        caching_plans: Optional[List[CachingPlan]] = None,
    ) -> PipelineReport:
        """Simulate ``num_inferences`` back-to-back inferences.

        The schedule must be dependency-valid; the graph should already be
        quantized (scheduling and deployment operate on the int8 model).
        """
        if num_inferences < 1:
            raise DeploymentError("num_inferences must be at least 1")
        violations = schedule.dependency_violations()
        if violations:
            raise DeploymentError(
                f"cannot simulate an invalid schedule; first violation: "
                f"{violations[0]}"
            )
        profiles = compute_stage_profiles(graph, schedule, self.spec, caching_plans)
        return self._simulate(profiles, num_inferences)

    # ------------------------------------------------------------------
    def _simulate(
        self, profiles: List[StageProfile], num_inferences: int
    ) -> PipelineReport:
        num_stages = len(profiles)
        shared = self.bus_mode == "shared"
        # Link state: one entry in shared mode, one per stage otherwise.
        link_free = [0.0] * (1 if shared else num_stages)
        link_busy = [0.0] * (1 if shared else num_stages)
        stage_free = [0.0] * num_stages
        stage_busy = [0.0] * num_stages
        completions: List[float] = [0.0] * num_inferences
        # Admission = when the host makes the inference ready for its
        # stage-0 input submission; latency is completion - admission.
        admissions: List[float] = [0.0] * num_inferences

        def link_index(stage: int) -> int:
            return 0 if shared else stage

        # Phase encoding per inference: stage k has phases IN(3k),
        # STREAM+COMPUTE(3k+1), OUT(3k+2); completion after last OUT.
        # Advancing state machines in ready-time order makes link grants
        # FIFO in true time.
        heap: List[Tuple[float, int, int]] = []  # (ready, inference, phase)
        heapq.heappush(heap, (0.0, 0, 0))
        next_inference = 1
        while heap:
            ready, j, phase = heapq.heappop(heap)
            k = phase // 3
            sub = phase % 3
            profile = profiles[k]
            link = link_index(k)
            if sub == 0:  # host -> device input transfer
                start = max(ready, link_free[link])
                duration = profile.input_transfer_seconds
                end = start + duration
                link_free[link] = end
                link_busy[link] += duration
                heapq.heappush(heap, (end, j, phase + 1))
                if k == 0 and next_inference < num_inferences:
                    # Admit the next inference once this input is on the
                    # wire; the host pipelines input submissions.
                    admissions[next_inference] = end
                    heapq.heappush(heap, (end, next_inference, 0))
                    next_inference += 1
            elif sub == 1:  # weight streaming (link+device), then compute
                device_ready = max(ready, stage_free[k])
                stream = profile.weight_stream_seconds
                if stream > 0.0:
                    start = max(device_ready, link_free[link])
                    link_free[link] = start + stream
                    link_busy[link] += stream
                    compute_start = start + stream
                else:
                    compute_start = device_ready
                compute_end = compute_start + profile.compute_seconds
                stage_free[k] = compute_end
                stage_busy[k] += stream + profile.compute_seconds
                heapq.heappush(heap, (compute_end, j, phase + 1))
            else:  # device -> host output transfer
                start = max(ready, link_free[link])
                duration = profile.output_transfer_seconds
                end = start + duration
                link_free[link] = end
                link_busy[link] += duration
                if k + 1 < num_stages:
                    heapq.heappush(heap, (end, j, phase + 1))
                else:
                    completions[j] = end

        makespan = max(completions)
        warmup = min(num_inferences - 1, 2 * num_stages)
        if num_inferences - 1 > warmup:
            period = (completions[-1] - completions[warmup]) / (
                num_inferences - 1 - warmup
            )
        else:
            period = makespan / num_inferences
        bottleneck = self._bottleneck(profiles, shared)
        return PipelineReport(
            num_inferences=num_inferences,
            makespan_seconds=makespan,
            throughput_per_second=num_inferences / makespan if makespan else 0.0,
            mean_latency_seconds=(
                sum(c - a for c, a in zip(completions, admissions))
                / num_inferences
            ),
            steady_period_seconds=period,
            stage_busy_seconds=stage_busy,
            bus_busy_seconds=sum(link_busy),
            bottleneck=bottleneck,
            bus_mode=self.bus_mode,
            profiles=profiles,
        )

    # ------------------------------------------------------------------
    def theoretical_period(self, profiles: List[StageProfile]) -> float:
        """Closed-form steady-state period lower bound.

        Every resource works ``per-inference seconds`` each cycle: device
        ``k`` needs ``stream_k + compute_k``; each link needs its stage's
        transfers (shared mode: their sum).  The pipeline cannot beat the
        busiest resource; the event simulation converges to (just above)
        this bound, which tests assert.
        """
        device = max((p.device_seconds for p in profiles), default=0.0)
        if self.bus_mode == "shared":
            link = sum(p.link_seconds for p in profiles)
        else:
            link = max((p.link_seconds for p in profiles), default=0.0)
        return max(device, link)

    def _bottleneck(self, profiles: List[StageProfile], shared: bool) -> str:
        if not profiles:
            return "empty"
        device_idx = max(
            range(len(profiles)), key=lambda k: profiles[k].device_seconds
        )
        device = profiles[device_idx].device_seconds
        if shared:
            bus = sum(p.link_seconds for p in profiles)
            if bus > device:
                return "usb_host_bus"
            return f"stage_{device_idx}"
        link_idx = max(range(len(profiles)), key=lambda k: profiles[k].link_seconds)
        link = profiles[link_idx].link_seconds
        if link > device:
            return f"link_{link_idx}"
        return f"stage_{device_idx}"
