"""Deployment flow: schedule -> partitioned, compiled, simulatable pipeline.

Mirrors the paper's deployment framework (Sec. IV): it "takes single or
multiple DNN models and the number of pipeline stages as inputs, and
outputs n partitioned subgraphs for deployment on Edge TPU devices",
going through quantization (Toco proxy), partitioning, per-device
parameter-cache compilation and finally simulation on the pipelined
system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import DeploymentError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.postprocess import postprocess_schedule
from repro.scheduling.schedule import Schedule
from repro.tpu.caching import CachingPlan, allocate_parameter_cache
from repro.tpu.pipeline import (
    PipelinedTpuSystem,
    PipelineReport,
    StageProfile,
    compute_stage_profiles,
)
from repro.tpu.quantize import is_quantized, quantize_graph
from repro.tpu.spec import EdgeTPUSpec, default_spec


@dataclass
class DeployedPipeline:
    """A model partitioned, quantized and mapped onto ``n`` Edge TPUs."""

    graph: ComputationalGraph
    schedule: Schedule
    spec: EdgeTPUSpec
    subgraphs: List[ComputationalGraph]
    caching_plans: List[CachingPlan]
    profiles: List[StageProfile] = field(default_factory=list)

    @property
    def num_stages(self) -> int:
        return self.schedule.num_stages

    def simulate(self, num_inferences: int = 1000) -> PipelineReport:
        """Run the inference workload on the simulated pipeline."""
        system = PipelinedTpuSystem(self.spec)
        return system.run(
            self.graph,
            self.schedule,
            num_inferences=num_inferences,
            caching_plans=self.caching_plans,
        )

    def summary(self) -> str:
        """Human-readable per-stage deployment summary."""
        lines = [f"pipeline: {self.graph.name} on {self.num_stages} Edge TPUs"]
        for k, plan in enumerate(self.caching_plans):
            nodes = len(self.subgraphs[k])
            lines.append(
                f"  stage {k}: {nodes:4d} ops, "
                f"{plan.on_chip_total / 1e6:7.3f} MB cached, "
                f"{plan.off_chip_total / 1e6:7.3f} MB streamed"
            )
        return "\n".join(lines)


def deploy(
    graph: ComputationalGraph,
    schedule: Schedule,
    spec: Optional[EdgeTPUSpec] = None,
    quantize: bool = True,
    repair: bool = True,
    enforce_siblings: bool = False,
) -> DeployedPipeline:
    """Turn a schedule into a deployable pipeline.

    Parameters
    ----------
    graph:
        Model computational graph (float or already-quantized).
    schedule:
        Stage assignment over ``graph``'s nodes.
    spec:
        Device specification; defaults to the Coral USB accelerator.
    quantize:
        Apply the Toco int8 conversion when the graph is still float.
    repair:
        Run post-inference processing (dependency repair, optional
        sibling rule) before deployment; with ``repair=False`` an invalid
        schedule raises :class:`DeploymentError`.
    """
    spec = spec or default_spec()
    if quantize and not is_quantized(graph):
        quantized = quantize_graph(graph)
        schedule = Schedule(quantized, schedule.num_stages, schedule.assignment)
        graph = quantized
    if repair:
        schedule = postprocess_schedule(schedule, enforce_siblings=enforce_siblings)
    violations = schedule.dependency_violations()
    if violations:
        raise DeploymentError(
            f"schedule violates {len(violations)} dependencies, e.g. "
            f"{violations[0]}; enable repair or fix the scheduler"
        )

    subgraphs = [
        graph.subgraph(stage_nodes, name=f"{graph.name}_stage{k}")
        for k, stage_nodes in enumerate(schedule.stages())
    ]
    caching_plans = [
        allocate_parameter_cache(graph, stage_nodes, spec.sram_bytes)
        for stage_nodes in schedule.stages()
    ]
    profiles = compute_stage_profiles(graph, schedule, spec, caching_plans)
    return DeployedPipeline(
        graph=graph,
        schedule=schedule,
        spec=spec,
        subgraphs=subgraphs,
        caching_plans=caching_plans,
        profiles=profiles,
    )
