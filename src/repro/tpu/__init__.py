"""Pipelined Coral Edge TPU system simulator.

The paper evaluates on a physical host driving 4/5/6 Coral Edge TPUs over
USB 3.0 (its Fig. 2).  That hardware is substituted here by a
discrete-event simulator built on the documented Edge TPU resource model:

* 8 MiB of on-chip SRAM caches model parameters; parameters that do not
  fit are *streamed from the host over USB on every inference* — the
  dominant cost cliff on this platform,
* an int8 systolic array with 4 TOPS peak (the TFLite/Toco int8
  quantization step is modelled in :mod:`repro.tpu.quantize`),
* a single shared USB 3.0 host controller that serializes inter-stage
  activation transfers and weight streaming (the pipeline's hidden
  bottleneck, and the main source of the paper's "performance modeling
  miscorrelation" between abstract objectives and on-chip runtime).
"""

from repro.tpu.caching import CachingPlan, allocate_parameter_cache
from repro.tpu.deploy import DeployedPipeline, deploy
from repro.tpu.latency import op_compute_seconds, profile_stage
from repro.tpu.pipeline import PipelinedTpuSystem, PipelineReport, StageProfile
from repro.tpu.power import EnergyReport, PowerModel, estimate_energy
from repro.tpu.quantize import quantize_graph
from repro.tpu.spec import EdgeTPUSpec, UsbSpec, default_spec

__all__ = [
    "CachingPlan",
    "DeployedPipeline",
    "EdgeTPUSpec",
    "EnergyReport",
    "PipelineReport",
    "PipelinedTpuSystem",
    "PowerModel",
    "StageProfile",
    "UsbSpec",
    "allocate_parameter_cache",
    "default_spec",
    "deploy",
    "estimate_energy",
    "op_compute_seconds",
    "profile_stage",
    "quantize_graph",
]
