"""Encoder input queue ``q``: embedding rows + their node names."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.embedding.features import EmbeddingConfig, embed_graph
from repro.errors import EmbeddingError
from repro.graphs.dag import ComputationalGraph


@dataclass
class EncoderQueue:
    """The paper's embedded input queue ``q``.

    ``features[i]`` embeds ``node_names[i]``; the RL policy's output
    indices refer to positions in this queue.  ``precedence[i, j]`` is
    True iff position ``j`` is a parent of position ``i`` — the decoder
    uses it to restrict choices to schedulable nodes.
    """

    node_names: List[str]
    features: np.ndarray    # [|V|, feature_dim]
    precedence: np.ndarray  # [|V|, |V|] bool

    def __len__(self) -> int:
        return len(self.node_names)

    def names_for(self, indices) -> List[str]:
        """Translate queue positions back to node names."""
        return [self.node_names[int(i)] for i in indices]


def build_precedence_matrix(
    graph: ComputationalGraph, node_names: List[str]
) -> np.ndarray:
    """``P[i, j] = True`` iff ``node_names[j]`` is a parent of ``node_names[i]``."""
    position = {name: i for i, name in enumerate(node_names)}
    matrix = np.zeros((len(node_names), len(node_names)), dtype=bool)
    for name in node_names:
        i = position[name]
        for parent in graph.parents(name):
            matrix[i, position[parent]] = True
    return matrix


def pad_queues(
    queues: Sequence[EncoderQueue],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad variable-size queues into one batch for vectorized decoding.

    Returns ``(features [B, N, F], precedence [B, N, N], lengths [B])``
    where ``N = max |V|``.  Padded feature rows are zero and padded
    precedence entries are False; row ``b``'s real content occupies its
    first ``lengths[b]`` positions.  Every queue must share one feature
    dimension (i.e. one :class:`EmbeddingConfig`).
    """
    if not queues:
        raise EmbeddingError("pad_queues needs at least one queue")
    feature_dims = {queue.features.shape[1] for queue in queues}
    if len(feature_dims) != 1:
        raise EmbeddingError(
            f"queues mix feature dimensions {sorted(feature_dims)}; "
            f"they must share one embedding config"
        )
    lengths = np.array([len(queue) for queue in queues], dtype=int)
    batch, max_nodes = len(queues), int(lengths.max())
    features = np.zeros((batch, max_nodes, feature_dims.pop()))
    precedence = np.zeros((batch, max_nodes, max_nodes), dtype=bool)
    for b, queue in enumerate(queues):
        features[b, : lengths[b], :] = queue.features
        precedence[b, : lengths[b], : lengths[b]] = queue.precedence
    return features, precedence, lengths


def build_encoder_queue(
    graph: ComputationalGraph,
    config: EmbeddingConfig = EmbeddingConfig(),
) -> EncoderQueue:
    """Embed ``graph`` and keep the row -> node-name mapping."""
    features = embed_graph(graph, config)
    node_names = graph.topological_order()
    return EncoderQueue(
        node_names=node_names,
        features=features,
        precedence=build_precedence_matrix(graph, node_names),
    )
