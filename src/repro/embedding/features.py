"""Node-feature embedding of computational graphs (Sec. III-A).

Each node is embedded with the four components the paper describes:

1. **absolute coordinates** — the node's ASAP topological level,
2. **relative coordinates** — its parents' topological levels and
   parents' IDs (padded to ``max_parents`` slots; source nodes use level
   0 and ID −1, matching the paper's convention),
3. **node ID** — a deterministic hash of the operator name,
4. **memory** — the node's parameter footprint.

All columns are scaled to ``[-1, 1]``-ish ranges so the same trained
policy generalizes from 30-node synthetic graphs to 782-node DNNs:
levels are normalized by graph depth, IDs by the hash modulus, and
memory by the largest node footprint in the graph.  (The paper feeds raw
coordinates; normalization is the standard trick that makes LSTM inputs
scale-free, and the ablation bench quantifies each column's value.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import EmbeddingError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.topology import asap_levels
from repro.utils.rng import stable_hash

_ID_MODULUS = 2**31 - 1


@dataclass(frozen=True)
class EmbeddingConfig:
    """Knobs of the graph embedding.

    ``max_parents`` bounds the relative-coordinate slots; graphs whose
    in-degree exceeds it keep the ``max_parents`` *most recent* parents
    (highest topological level), which preserves the tightest dependency
    constraints.  Column groups can be disabled for ablations.
    """

    max_parents: int = 6
    include_levels: bool = True
    include_parent_levels: bool = True
    include_parent_ids: bool = True
    include_node_id: bool = True
    include_memory: bool = True

    @property
    def feature_dim(self) -> int:
        dim = 0
        if self.include_levels:
            dim += 1
        if self.include_parent_levels:
            dim += self.max_parents
        if self.include_parent_ids:
            dim += self.max_parents
        if self.include_node_id:
            dim += 1
        if self.include_memory:
            dim += 1
        return dim


def embedding_feature_names(config: EmbeddingConfig = EmbeddingConfig()) -> List[str]:
    """Column labels of the embedding matrix (documentation/debugging)."""
    names: List[str] = []
    if config.include_levels:
        names.append("topo_level")
    if config.include_parent_levels:
        names.extend(f"parent_level_{i}" for i in range(config.max_parents))
    if config.include_parent_ids:
        names.extend(f"parent_id_{i}" for i in range(config.max_parents))
    if config.include_node_id:
        names.append("node_id")
    if config.include_memory:
        names.append("memory")
    return names


def _node_id(name: str) -> float:
    """Operator-name hash scaled to [0, 1)."""
    return stable_hash(name, _ID_MODULUS) / _ID_MODULUS


def embed_graph(
    graph: ComputationalGraph,
    config: EmbeddingConfig = EmbeddingConfig(),
) -> np.ndarray:
    """Embed ``graph`` into a ``[|V|, feature_dim]`` float matrix.

    Rows follow the graph's topological order (the encoder input queue
    order); use :func:`repro.embedding.queue.build_encoder_queue` to keep
    the row -> node-name correspondence.
    """
    if graph.num_nodes == 0:
        raise EmbeddingError("cannot embed an empty graph")
    if config.max_parents < 1:
        raise EmbeddingError("max_parents must be at least 1")
    if config.feature_dim == 0:
        raise EmbeddingError("embedding config disables every column")

    levels = asap_levels(graph)
    depth = max(levels.values())
    level_scale = 1.0 / max(1, depth)
    max_mem = max((n.param_bytes for n in graph.nodes), default=0)
    mem_scale = 1.0 / max(1, max_mem)

    order = graph.topological_order()
    rows = np.zeros((len(order), config.feature_dim))
    for row_idx, name in enumerate(order):
        col = 0
        if config.include_levels:
            rows[row_idx, col] = levels[name] * level_scale
            col += 1
        parents = graph.parents(name)
        if len(parents) > config.max_parents:
            # Keep the tightest constraints: the latest-level parents.
            parents = sorted(parents, key=lambda p: levels[p])[-config.max_parents:]
        if config.include_parent_levels:
            for slot in range(config.max_parents):
                if slot < len(parents):
                    rows[row_idx, col + slot] = levels[parents[slot]] * level_scale
                else:
                    rows[row_idx, col + slot] = 0.0  # paper: sources use 0
            col += config.max_parents
        if config.include_parent_ids:
            for slot in range(config.max_parents):
                if slot < len(parents):
                    rows[row_idx, col + slot] = _node_id(parents[slot])
                else:
                    rows[row_idx, col + slot] = -1.0  # paper: missing ID = -1
            col += config.max_parents
        if config.include_node_id:
            rows[row_idx, col] = _node_id(name)
            col += 1
        if config.include_memory:
            rows[row_idx, col] = graph.node(name).param_bytes * mem_scale
            col += 1
    return rows
