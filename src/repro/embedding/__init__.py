"""Computational-graph embedding (Sec. III-A of the paper)."""

from repro.embedding.features import (
    EmbeddingConfig,
    embed_graph,
    embedding_feature_names,
)
from repro.embedding.queue import (
    EncoderQueue,
    build_encoder_queue,
    build_precedence_matrix,
    pad_queues,
)

__all__ = [
    "EmbeddingConfig",
    "EncoderQueue",
    "build_encoder_queue",
    "build_precedence_matrix",
    "embed_graph",
    "embedding_feature_names",
    "pad_queues",
]
