"""Fleet discrete-event simulation: arrival stream -> router -> replicas.

One global event loop drives every replica's pipelined execution under a
multi-tenant request stream.  Each replica runs the same three-phase
stage machinery as :class:`repro.tpu.pipeline.PipelinedTpuSystem`
(input transfer, weight stream + compute, output transfer; FIFO link
grants in ready-time order), generalized in two ways:

* inferences arrive at *workload times* and carry *per-model* stage
  profiles, so heterogeneous models interleave on one replica;
* when consecutive inferences at a stage belong to different models, the
  stage pays a **model-switch reload** — streaming the incoming model's
  resident (on-chip) weights over the link before computing — which
  makes tenant-affinity a real routing concern, exactly as on physical
  Edge TPUs whose SRAM holds one model's parameters at a time.

Routing decisions happen at arrival time against the fluid
:class:`~repro.cluster.router.ReplicaState` estimates; the DES then
charges true resource-contention timing.  Everything is deterministic:
same requests + fleet + router => the identical :class:`FleetReport`.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.cluster.fleet import Fleet, Replica
from repro.cluster.report import (
    FleetReport,
    ReplicaReport,
    TenantReport,
    summarize_tenant,
)
from repro.cluster.router import ReplicaState, Router
from repro.cluster.workload import Request, Scenario, TenantSpec, generate_requests
from repro.errors import DeploymentError
from repro.obs.telemetry import Telemetry
from repro.obs.trace import new_trace_id
from repro.tpu.latency import weight_stream_seconds
from repro.tpu.pipeline import PipelineReport, StageProfile
from repro.tpu.power import PowerModel, estimate_energy
from repro.utils.rng import SeedLike

_ARRIVAL = -1


class _ReplicaRuntime:
    """Mutable per-replica simulation state (resources + accumulators)."""

    def __init__(self, index: int, replica: Replica) -> None:
        self.replica = replica
        self.state = ReplicaState(index, replica)
        shared = replica.spec.bus_mode == "shared"
        links = 1 if shared else replica.num_stages
        self.shared = shared
        self.link_free = [0.0] * links
        self.link_busy = [0.0] * links
        self.stage_free = [0.0] * replica.num_stages
        self.stage_busy = [0.0] * replica.num_stages
        self.last_model: List[Optional[str]] = [None] * replica.num_stages
        # Per-stage accumulators feeding the energy/utilization report.
        self.in_bytes = [0] * replica.num_stages
        self.out_bytes = [0] * replica.num_stages
        self.stream_bytes = [0] * replica.num_stages
        self.compute_seconds = [0.0] * replica.num_stages
        self.stream_seconds = [0.0] * replica.num_stages
        self.in_transfer_seconds = [0.0] * replica.num_stages
        self.out_transfer_seconds = [0.0] * replica.num_stages
        self.latencies: List[float] = []
        # Host-side input submission is paced exactly like the tier-1
        # pipeline simulator: one stage-0 input on the wire at a time,
        # the next admitted when it finishes.  Without this, a burst of
        # arrivals would book the stage-0 link far ahead of earlier
        # requests' pending mid-pipeline transfers (a head-of-line
        # inversion the real host cannot produce).
        self.input_queue: Deque[int] = deque()
        self.input_busy = False

    def link_index(self, stage: int) -> int:
        return 0 if self.shared else stage


class FleetSimulator:
    """Simulate a routed multi-tenant request stream over a fleet.

    Parameters
    ----------
    fleet:
        The replicas and their model deployments.
    router:
        Routing/admission policy consulted once per arriving request.
    model_switch_reload:
        Charge the on-chip weight reload when a stage switches models
        between consecutive inferences (default on).  Disable to model
        replicas with per-model SRAM partitions.
    power:
        Power model used for the per-replica energy reports.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`.  Counters land under a
        ``layer="fleet"`` label; when tracing is enabled, each sampled
        request emits a span tree **on the simulated clock** (root
        ``request`` with the DES arrival/completion times, a ``route``
        decision span and per-stage transfer/compute spans) — the same
        record schema the live serving tier exports, so one trace viewer
        reads both.
    """

    def __init__(
        self,
        fleet: Fleet,
        router: Router,
        model_switch_reload: bool = True,
        power: PowerModel = PowerModel(),
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.fleet = fleet
        self.router = router
        self.model_switch_reload = model_switch_reload
        self.power = power
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        fleet_t = self.telemetry.child(layer="fleet")
        self._m_requests = fleet_t.counter(
            "respect_fleet_requests_total",
            help="Requests arriving at the simulated fleet router",
        )
        self._m_rejected = fleet_t.counter(
            "respect_fleet_rejected_total",
            help="Requests the router rejected (admission denied)",
        )
        self._m_completed = fleet_t.counter(
            "respect_fleet_completed_total",
            help="Requests that completed their full pipeline",
        )

    # ------------------------------------------------------------------
    def simulate(
        self,
        requests: Sequence[Request],
        duration_s: float = 0.0,
        scenario_name: str = "adhoc",
        tenants: Optional[Sequence[TenantSpec]] = None,
    ) -> FleetReport:
        """Run the stream to drain and fold the outcome into a report.

        The horizon is ``max(duration_s, last completion)``: utilization
        and idle energy are charged over the full window even when the
        fleet drains early, and over the drain tail when it does not.
        """
        requests = sorted(requests, key=lambda r: (r.arrival_s, r.index))
        runtimes = [
            _ReplicaRuntime(i, replica)
            for i, replica in enumerate(self.fleet.replicas)
        ]
        states = [runtime.state for runtime in runtimes]
        self.router.reset(len(runtimes))

        assigned: Dict[int, Tuple[_ReplicaRuntime, Tuple[StageProfile, ...]]] = {}
        rejected: Dict[int, bool] = {}
        completion_latency: Dict[int, float] = {}
        by_index = {request.index: request for request in requests}
        if len(by_index) != len(requests):
            raise DeploymentError("request indices must be unique")

        # Event heap: (time, seq, request index, phase); phase -1 = arrival.
        heap: List[Tuple[float, int, int, int]] = []
        seq = 0
        for request in requests:
            heapq.heappush(heap, (request.arrival_s, seq, request.index, _ARRIVAL))
            seq += 1

        tracer = self.telemetry.tracer
        # Sampled requests accumulate their simulated-clock stage
        # intervals here; the records are emitted at completion so the
        # root span (whose end *is* the completion time) can parent
        # every child.
        traces: Dict[int, dict] = {}

        last_completion = 0.0
        while heap:
            now, _, req_index, phase = heapq.heappop(heap)
            request = by_index[req_index]
            if phase == _ARRIVAL:
                self._m_requests.inc()
                sampled = tracer is not None and tracer.sample()
                choice = self.router.route(request, states, now)
                if choice is None:
                    rejected[req_index] = True
                    self._m_rejected.inc()
                    if sampled:
                        tracer.record_span(
                            "request",
                            request.arrival_s,
                            now,
                            new_trace_id(),
                            status="rejected",
                            attrs={
                                "tenant": request.tenant,
                                "model": request.model,
                                "simulated_clock": True,
                            },
                        )
                    continue
                if not 0 <= choice < len(runtimes):
                    raise DeploymentError(
                        f"router {self.router.name!r} returned replica index "
                        f"{choice} for a fleet of {len(runtimes)}"
                    )
                runtime = runtimes[choice]
                deployment = runtime.replica.deployment(request.model)
                runtime.state.admit(request.model, now)
                assigned[req_index] = (runtime, deployment.profiles)
                if sampled:
                    traces[req_index] = {
                        "trace_id": new_trace_id(),
                        "replica": choice,
                        "spans": [],
                    }
                if runtime.input_busy:
                    runtime.input_queue.append(req_index)
                else:
                    runtime.input_busy = True
                    heapq.heappush(heap, (now, seq, req_index, 0))
                    seq += 1
                continue

            runtime, profiles = assigned[req_index]
            k, sub = phase // 3, phase % 3
            profile = profiles[k]
            link = runtime.link_index(k)
            if sub == 0:  # host -> device input transfer
                start = max(now, runtime.link_free[link])
                duration = profile.input_transfer_seconds
                end = start + duration
                runtime.link_free[link] = end
                runtime.link_busy[link] += duration
                runtime.in_bytes[k] += profile.input_bytes
                runtime.in_transfer_seconds[k] += duration
                ctx = traces.get(req_index)
                if ctx is not None:
                    ctx["spans"].append(
                        ("input_transfer", start, end, {"stage": k})
                    )
                heapq.heappush(heap, (end, seq, req_index, phase + 1))
                seq += 1
                if k == 0:
                    # This input is on the wire: submit the next queued
                    # request's input once it completes.
                    if runtime.input_queue:
                        heapq.heappush(
                            heap, (end, seq, runtime.input_queue.popleft(), 0)
                        )
                        seq += 1
                    else:
                        runtime.input_busy = False
            elif sub == 1:  # weight (re)stream then compute, on the device
                device_ready = max(now, runtime.stage_free[k])
                stream = profile.weight_stream_seconds
                stream_bytes = profile.off_chip_bytes
                if (
                    self.model_switch_reload
                    and runtime.last_model[k] is not None
                    and runtime.last_model[k] != request.model
                    and profile.on_chip_bytes > 0
                ):
                    stream += weight_stream_seconds(
                        profile.on_chip_bytes, runtime.replica.spec.spec
                    )
                    stream_bytes += profile.on_chip_bytes
                runtime.last_model[k] = request.model
                if stream > 0.0:
                    start = max(device_ready, runtime.link_free[link])
                    runtime.link_free[link] = start + stream
                    runtime.link_busy[link] += stream
                    compute_start = start + stream
                else:
                    compute_start = device_ready
                compute_end = compute_start + profile.compute_seconds
                runtime.stage_free[k] = compute_end
                runtime.stage_busy[k] += stream + profile.compute_seconds
                runtime.stream_bytes[k] += stream_bytes
                runtime.stream_seconds[k] += stream
                runtime.compute_seconds[k] += profile.compute_seconds
                ctx = traces.get(req_index)
                if ctx is not None:
                    # The span opens when the weight stream starts (or
                    # at device-ready when nothing streams) and closes
                    # at compute end — one contiguous device interval.
                    ctx["spans"].append(
                        (
                            "compute",
                            compute_end - profile.compute_seconds - stream,
                            compute_end,
                            {"stage": k, "weight_stream_s": stream},
                        )
                    )
                heapq.heappush(heap, (compute_end, seq, req_index, phase + 1))
                seq += 1
            else:  # device -> host output transfer
                start = max(now, runtime.link_free[link])
                duration = profile.output_transfer_seconds
                end = start + duration
                runtime.link_free[link] = end
                runtime.link_busy[link] += duration
                runtime.out_bytes[k] += profile.output_bytes
                runtime.out_transfer_seconds[k] += duration
                ctx = traces.get(req_index)
                if ctx is not None:
                    ctx["spans"].append(
                        ("output_transfer", start, end, {"stage": k})
                    )
                if k + 1 < len(profiles):
                    heapq.heappush(heap, (end, seq, req_index, phase + 1))
                    seq += 1
                else:
                    runtime.state.complete()
                    latency = end - request.arrival_s
                    runtime.latencies.append(latency)
                    completion_latency[req_index] = latency
                    last_completion = max(last_completion, end)
                    self._m_completed.inc()
                    ctx = traces.pop(req_index, None)
                    if ctx is not None:
                        root = tracer.record_span(
                            "request",
                            request.arrival_s,
                            end,
                            ctx["trace_id"],
                            attrs={
                                "tenant": request.tenant,
                                "model": request.model,
                                "replica": ctx["replica"],
                                "simulated_clock": True,
                            },
                        )
                        tracer.record_span(
                            "route",
                            request.arrival_s,
                            request.arrival_s,
                            ctx["trace_id"],
                            parent_id=root["span_id"],
                            attrs={
                                "replica": ctx["replica"],
                                "router": self.router.name,
                            },
                        )
                        for name, span_s, span_e, attrs in ctx["spans"]:
                            tracer.record_span(
                                name,
                                span_s,
                                span_e,
                                ctx["trace_id"],
                                parent_id=root["span_id"],
                                attrs=attrs,
                            )

        horizon = max(float(duration_s), last_completion)
        return self._build_report(
            requests,
            runtimes,
            rejected,
            completion_latency,
            horizon,
            scenario_name,
            tenants,
        )

    # ------------------------------------------------------------------
    def _build_report(
        self,
        requests: Sequence[Request],
        runtimes: Sequence[_ReplicaRuntime],
        rejected: Dict[int, bool],
        completion_latency: Dict[int, float],
        horizon: float,
        scenario_name: str,
        tenants: Optional[Sequence[TenantSpec]],
    ) -> FleetReport:
        # -- tenants ----------------------------------------------------
        tenant_latencies: Dict[str, List[float]] = {}
        tenant_requests: Dict[str, int] = {}
        tenant_rejected: Dict[str, int] = {}
        tenant_within: Dict[str, int] = {}
        tenant_slo: Dict[str, float] = {}
        if tenants is not None:
            for spec in tenants:
                tenant_latencies[spec.name] = []
                tenant_requests[spec.name] = 0
                tenant_rejected[spec.name] = 0
                tenant_within[spec.name] = 0
                tenant_slo[spec.name] = spec.slo_seconds
        for request in requests:
            tenant_requests[request.tenant] = (
                tenant_requests.get(request.tenant, 0) + 1
            )
            tenant_latencies.setdefault(request.tenant, [])
            tenant_rejected.setdefault(request.tenant, 0)
            tenant_within.setdefault(request.tenant, 0)
            tenant_slo.setdefault(request.tenant, request.slo_seconds)
            if rejected.get(request.index):
                tenant_rejected[request.tenant] += 1
            elif request.index in completion_latency:
                latency = completion_latency[request.index]
                tenant_latencies[request.tenant].append(latency)
                # Score against the request's own deadline — the same
                # one the admission policies judge — so per-request SLOs
                # in ad-hoc streams are honored.
                if latency <= request.slo_seconds:
                    tenant_within[request.tenant] += 1
        tenant_reports = tuple(
            summarize_tenant(
                name,
                tenant_slo[name],
                tenant_requests.get(name, 0),
                tenant_rejected.get(name, 0),
                tenant_latencies[name],
                tenant_within.get(name, 0),
                horizon,
            )
            for name in tenant_latencies
        )

        # -- replicas ---------------------------------------------------
        replica_reports = tuple(
            self._replica_report(runtime, horizon) for runtime in runtimes
        )
        completed = sum(t.completed for t in tenant_reports)
        return FleetReport(
            scenario=scenario_name,
            router=self.router.name,
            horizon_s=horizon,
            requests=len(requests),
            completed=completed,
            rejected=sum(t.rejected for t in tenant_reports),
            tenants=tenant_reports,
            replicas=replica_reports,
            schedule_reuse_hit_rate=self.fleet.build_stats.hit_rate,
        )

    # ------------------------------------------------------------------
    def _replica_report(
        self, runtime: _ReplicaRuntime, horizon: float
    ) -> ReplicaReport:
        replica = runtime.replica
        served = runtime.state.served
        num_stages = replica.num_stages
        spec = replica.spec.spec
        profiles: List[StageProfile] = []
        if served:
            for k in range(num_stages):
                profiles.append(
                    StageProfile(
                        stage=k,
                        compute_seconds=runtime.compute_seconds[k] / served,
                        weight_stream_seconds=runtime.stream_seconds[k] / served,
                        input_bytes=runtime.in_bytes[k] // served,
                        output_bytes=runtime.out_bytes[k] // served,
                        input_transfer_seconds=(
                            runtime.in_transfer_seconds[k] / served
                        ),
                        output_transfer_seconds=(
                            runtime.out_transfer_seconds[k] / served
                        ),
                        on_chip_bytes=0,
                        off_chip_bytes=runtime.stream_bytes[k] // served,
                    )
                )
        stage_util = tuple(
            (busy / horizon if horizon else 0.0) for busy in runtime.stage_busy
        )
        bus_busy = sum(runtime.link_busy)
        bus_capacity = horizon * len(runtime.link_free)
        pipeline_report = PipelineReport(
            num_inferences=served,
            makespan_seconds=horizon,
            throughput_per_second=served / horizon if horizon else 0.0,
            mean_latency_seconds=(
                sum(runtime.latencies) / served if served else 0.0
            ),
            steady_period_seconds=horizon / served if served else 0.0,
            stage_busy_seconds=list(runtime.stage_busy),
            bus_busy_seconds=bus_busy,
            bottleneck=self._bottleneck(runtime),
            bus_mode=replica.spec.bus_mode,
            profiles=profiles,
        )
        return ReplicaReport(
            replica=replica.name,
            num_stages=num_stages,
            bus_mode=replica.spec.bus_mode,
            served=served,
            utilization=max(stage_util, default=0.0),
            stage_utilization=stage_util,
            bus_utilization=bus_busy / bus_capacity if bus_capacity else 0.0,
            energy=estimate_energy(pipeline_report, self.power),
        )

    @staticmethod
    def _bottleneck(runtime: _ReplicaRuntime) -> str:
        # Mirrors PipelinedTpuSystem._bottleneck: the busiest device
        # stage vs the busiest single link (shared mode: the one bus).
        if runtime.state.served == 0:
            return "idle"
        stage = max(
            range(len(runtime.stage_busy)), key=lambda k: runtime.stage_busy[k]
        )
        if runtime.shared:
            if runtime.link_busy[0] > runtime.stage_busy[stage]:
                return "usb_host_bus"
            return f"stage_{stage}"
        link = max(
            range(len(runtime.link_busy)), key=lambda i: runtime.link_busy[i]
        )
        if runtime.link_busy[link] > runtime.stage_busy[stage]:
            return f"link_{link}"
        return f"stage_{stage}"


def simulate_scenario(
    scenario: Scenario,
    fleet: Fleet,
    router: Router,
    seed: SeedLike,
    model_switch_reload: bool = True,
    power: PowerModel = PowerModel(),
    telemetry: Optional[Telemetry] = None,
) -> FleetReport:
    """Generate the scenario's stream under ``seed`` and simulate it."""
    requests = generate_requests(scenario, seed)
    simulator = FleetSimulator(
        fleet,
        router,
        model_switch_reload=model_switch_reload,
        power=power,
        telemetry=telemetry,
    )
    return simulator.simulate(
        requests,
        duration_s=scenario.duration_s,
        scenario_name=scenario.name,
        tenants=scenario.tenants,
    )
