"""Fleet simulation reports.

:class:`FleetReport` aggregates one simulated run three ways: per tenant
(throughput, latency percentiles, SLO attainment), per replica
(utilization, served count, energy via
:func:`repro.tpu.power.estimate_energy`) and fleet-wide totals.  All
fields are plain deterministic dataclasses, so two runs of the same
``(seed, scenario, fleet, router)`` produce *equal* reports — tests
assert bit-identical replay on exactly this equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import DeploymentError
from repro.tpu.power import EnergyReport
from repro.utils.stats import percentile


@dataclass(frozen=True)
class TenantReport:
    """Per-tenant service quality over one simulated run."""

    tenant: str
    slo_seconds: float
    requests: int
    completed: int
    rejected: int
    throughput_per_s: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p99_s: float
    #: Fraction of *all* the tenant's requests that completed within the
    #: SLO — rejected requests count as misses, so admission control
    #: cannot inflate attainment by shedding load.
    slo_attainment: float


@dataclass(frozen=True)
class ReplicaReport:
    """Per-replica load, utilization and energy over one simulated run."""

    replica: str
    num_stages: int
    bus_mode: str
    served: int
    #: Busiest stage's busy fraction of the horizon (<= 1 by construction).
    utilization: float
    stage_utilization: Tuple[float, ...]
    bus_utilization: float
    energy: EnergyReport


@dataclass(frozen=True)
class FleetReport:
    """Everything measured for one (scenario, fleet, router, seed) run."""

    scenario: str
    router: str
    horizon_s: float
    requests: int
    completed: int
    rejected: int
    tenants: Tuple[TenantReport, ...]
    replicas: Tuple[ReplicaReport, ...]
    schedule_reuse_hit_rate: float = 0.0

    @property
    def throughput_per_s(self) -> float:
        if self.horizon_s == 0:
            return 0.0
        return self.completed / self.horizon_s

    @property
    def slo_attainment(self) -> float:
        """Fleet-wide fraction of requests served within their SLO."""
        if self.requests == 0:
            return 0.0
        within = sum(t.slo_attainment * t.requests for t in self.tenants)
        return within / self.requests

    @property
    def total_joules(self) -> float:
        return sum(r.energy.total_joules for r in self.replicas)

    @property
    def joules_per_completed(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.total_joules / self.completed

    def tenant(self, name: str) -> TenantReport:
        for report in self.tenants:
            if report.tenant == name:
                return report
        raise DeploymentError(f"no tenant named {name!r} in the report")

    def replica(self, name: str) -> ReplicaReport:
        for report in self.replicas:
            if report.replica == name:
                return report
        raise DeploymentError(f"no replica named {name!r} in the report")


def summarize_tenant(
    tenant: str,
    slo_seconds: float,
    requests: int,
    rejected: int,
    latencies: List[float],
    within: int,
    horizon_s: float,
) -> TenantReport:
    """Fold one tenant's completion latencies into a :class:`TenantReport`.

    ``within`` is the count of completions that met their *own*
    request's deadline — scored per request by the simulator, so ad-hoc
    streams with per-request SLOs are judged against the same deadlines
    the admission policies see.  ``slo_seconds`` is the tenant's
    declared SLO, carried for display.
    """
    completed = len(latencies)
    return TenantReport(
        tenant=tenant,
        slo_seconds=slo_seconds,
        requests=requests,
        completed=completed,
        rejected=rejected,
        throughput_per_s=completed / horizon_s if horizon_s else 0.0,
        latency_mean_s=sum(latencies) / completed if completed else 0.0,
        latency_p50_s=percentile(latencies, 50) if latencies else 0.0,
        latency_p99_s=percentile(latencies, 99) if latencies else 0.0,
        slo_attainment=within / requests if requests else 0.0,
    )
