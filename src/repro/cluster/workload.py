"""Multi-tenant workload generation for fleet simulation.

A fleet serves *request streams*, not back-to-back inference loops: each
tenant owns a model mix, an average request rate, a latency SLO and an
arrival process.  This module turns a :class:`Scenario` (a set of
tenants plus a time horizon) into one deterministic, time-ordered list
of :class:`Request` objects — the input of
:class:`repro.cluster.simulate.FleetSimulator`.

Determinism contract: every stochastic choice flows through
:mod:`repro.utils.rng`.  Each tenant draws from its own child generator
(spawned from the scenario seed via ``SeedSequence``), so a
``(seed, scenario)`` pair replays the identical trace regardless of how
many tenants exist or in which order they are listed elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import DeploymentError
from repro.utils.rng import SeedLike, spawn_rngs


class ArrivalProcess:
    """Strategy producing request arrival times over ``[0, duration_s)``."""

    name = "arrival"

    def sample_times(
        self, rate_per_s: float, duration_s: float, rng: np.random.Generator
    ) -> List[float]:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process: i.i.d. exponential inter-arrivals."""

    name = "poisson"

    def sample_times(
        self, rate_per_s: float, duration_s: float, rng: np.random.Generator
    ) -> List[float]:
        if rate_per_s <= 0:
            return []
        times: List[float] = []
        t = float(rng.exponential(1.0 / rate_per_s))
        while t < duration_s:
            times.append(t)
            t += float(rng.exponential(1.0 / rate_per_s))
        return times


class BurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (MMPP-2).

    The stream alternates between an ON state (bursts, rate
    ``burst_factor`` times the nominal rate) and an OFF state whose rate
    is chosen so the *long-run average* still equals ``rate_per_s``:
    ``on_fraction * burst_factor + (1 - on_fraction) * off_factor = 1``.
    Sojourn times in each state are exponential with means
    ``mean_burst_s`` (ON) and ``mean_burst_s * (1 - on_fraction) /
    on_fraction`` (OFF), so the process spends ``on_fraction`` of the
    time bursting.
    """

    name = "bursty"

    def __init__(
        self,
        burst_factor: float = 4.0,
        on_fraction: float = 0.2,
        mean_burst_s: float = 0.5,
    ) -> None:
        if not 0.0 < on_fraction < 1.0:
            raise DeploymentError("on_fraction must be in (0, 1)")
        if burst_factor < 1.0:
            raise DeploymentError("burst_factor must be >= 1")
        if burst_factor * on_fraction > 1.0:
            raise DeploymentError(
                "burst_factor * on_fraction must be <= 1 so the OFF-state "
                "rate stays non-negative"
            )
        if mean_burst_s <= 0:
            raise DeploymentError("mean_burst_s must be positive")
        self.burst_factor = burst_factor
        self.on_fraction = on_fraction
        self.mean_burst_s = mean_burst_s

    def sample_times(
        self, rate_per_s: float, duration_s: float, rng: np.random.Generator
    ) -> List[float]:
        if rate_per_s <= 0:
            return []
        off_factor = (1.0 - self.on_fraction * self.burst_factor) / (
            1.0 - self.on_fraction
        )
        mean_off_s = self.mean_burst_s * (1.0 - self.on_fraction) / self.on_fraction
        on = bool(rng.random() < self.on_fraction)
        times: List[float] = []
        t = 0.0
        while t < duration_s:
            sojourn = float(
                rng.exponential(self.mean_burst_s if on else mean_off_s)
            )
            state_end = min(t + sojourn, duration_s)
            rate = rate_per_s * (self.burst_factor if on else off_factor)
            if rate > 0:
                arrival = t + float(rng.exponential(1.0 / rate))
                while arrival < state_end:
                    times.append(arrival)
                    arrival += float(rng.exponential(1.0 / rate))
            t = state_end
            on = not on
        return times


class TraceArrivals(ArrivalProcess):
    """Replay an explicit list of arrival times (clipped to the horizon)."""

    name = "trace"

    def __init__(self, times: Sequence[float]) -> None:
        if any(t < 0 for t in times):
            raise DeploymentError("trace arrival times must be non-negative")
        self.times = tuple(sorted(float(t) for t in times))

    def sample_times(
        self, rate_per_s: float, duration_s: float, rng: np.random.Generator
    ) -> List[float]:
        return [t for t in self.times if t < duration_s]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a model mix, an arrival stream and a latency SLO."""

    name: str
    model_mix: Mapping[str, float]
    rate_per_s: float
    slo_seconds: float
    arrivals: ArrivalProcess = field(default_factory=PoissonArrivals)

    def __post_init__(self) -> None:
        if not self.model_mix:
            raise DeploymentError(f"tenant {self.name!r} has an empty model mix")
        if any(w <= 0 for w in self.model_mix.values()):
            raise DeploymentError(
                f"tenant {self.name!r} model-mix weights must be positive"
            )
        if self.rate_per_s < 0:
            raise DeploymentError(f"tenant {self.name!r} rate must be >= 0")
        if self.slo_seconds <= 0:
            raise DeploymentError(f"tenant {self.name!r} SLO must be positive")


@dataclass(frozen=True)
class Request:
    """One inference request as seen by the fleet router."""

    index: int
    tenant: str
    model: str
    arrival_s: float
    slo_seconds: float

    @property
    def deadline_s(self) -> float:
        return self.arrival_s + self.slo_seconds


@dataclass(frozen=True)
class Scenario:
    """A named multi-tenant workload over a fixed time horizon."""

    name: str
    tenants: Tuple[TenantSpec, ...]
    duration_s: float

    def __post_init__(self) -> None:
        if not self.tenants:
            raise DeploymentError("scenario needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise DeploymentError(f"tenant names must be unique, got {names}")
        if self.duration_s <= 0:
            raise DeploymentError("scenario duration must be positive")

    def model_names(self) -> List[str]:
        """Every model referenced by some tenant mix (sorted, unique)."""
        return sorted({m for t in self.tenants for m in t.model_mix})


def generate_requests(scenario: Scenario, seed: SeedLike) -> List[Request]:
    """Materialize the scenario's request stream, time-ordered.

    Each tenant consumes its own spawned child generator (arrival times
    first, then per-arrival model draws), so traces are reproducible and
    independent across tenants.  Ties in arrival time break by tenant
    order then per-tenant sequence, making the merged stream — and the
    global request indices — deterministic.
    """
    rngs = spawn_rngs(seed, len(scenario.tenants))
    merged: List[Tuple[float, int, int, str, str, float]] = []
    for tenant_idx, (tenant, rng) in enumerate(zip(scenario.tenants, rngs)):
        times = tenant.arrivals.sample_times(
            tenant.rate_per_s, scenario.duration_s, rng
        )
        models = sorted(tenant.model_mix)
        weights = np.array([tenant.model_mix[m] for m in models], dtype=float)
        weights /= weights.sum()
        choices = rng.choice(len(models), size=len(times), p=weights)
        for seq, (t, c) in enumerate(zip(times, choices)):
            merged.append(
                (t, tenant_idx, seq, tenant.name, models[int(c)], tenant.slo_seconds)
            )
    merged.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
    return [
        Request(
            index=i,
            tenant=tenant,
            model=model,
            arrival_s=t,
            slo_seconds=slo,
        )
        for i, (t, _, _, tenant, model, slo) in enumerate(merged)
    ]


def tenant_request_counts(requests: Sequence[Request]) -> Dict[str, int]:
    """Requests per tenant (insertion order follows first appearance)."""
    counts: Dict[str, int] = {}
    for request in requests:
        counts[request.tenant] = counts.get(request.tenant, 0) + 1
    return counts
