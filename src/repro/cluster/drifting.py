"""Drifting multi-tenant graph workloads for online-adaptation studies.

The fleet scenarios of :mod:`repro.cluster.workload` name *models* from
the zoo; drift studies need tenants whose **graph distribution itself
changes mid-run** — the regime where a frozen learned scheduler starts
serving stale decisions.  A :class:`GraphDriftScenario` describes
tenants that draw whole computational graphs from a *pre-drift* family
until ``drift_at_s`` and from a *post-drift* family afterwards (the
canonical instance: compute-uniform CNN traffic shifting to
attention-heavy graphs, see :mod:`repro.graphs.families`).

Determinism mirrors :func:`repro.cluster.workload.generate_requests`:
every tenant consumes its own spawned child generator for arrivals and
family sampling, so a ``(seed, scenario)`` pair replays the identical
graph trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from repro.cluster.workload import ArrivalProcess, PoissonArrivals
from repro.errors import DeploymentError
from repro.graphs.dag import ComputationalGraph
from repro.utils.rng import SeedLike, spawn_rngs

#: Builds a seeded graph family (an object with ``sample()``).
FamilyFactory = Callable[[object], object]


@dataclass(frozen=True)
class GraphTenantSpec:
    """One tenant of a drifting-graph workload."""

    name: str
    rate_per_s: float
    num_stages: int
    arrivals: ArrivalProcess = field(default_factory=PoissonArrivals)

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise DeploymentError(f"tenant {self.name!r} rate must be >= 0")
        if self.num_stages < 1:
            raise DeploymentError(
                f"tenant {self.name!r} needs at least one pipeline stage"
            )


@dataclass(frozen=True)
class GraphRequest:
    """One scheduling request carrying its own computational graph."""

    index: int
    tenant: str
    graph: ComputationalGraph
    num_stages: int
    arrival_s: float
    #: ``"pre"`` or ``"post"`` relative to the scenario's drift point.
    phase: str


@dataclass(frozen=True)
class GraphDriftScenario:
    """Tenants whose graph family shifts at ``drift_at_s``.

    ``pre_family`` / ``post_family`` are factories ``f(seed) -> family``
    (e.g. :class:`~repro.graphs.families.ComputeUniformFamily` /
    :class:`~repro.graphs.families.AttentionAugmentedFamily`); each
    tenant instantiates both with spawned child seeds so traces are
    independent across tenants and reproducible under the scenario seed.
    """

    name: str
    tenants: Tuple[GraphTenantSpec, ...]
    duration_s: float
    drift_at_s: float
    pre_family: FamilyFactory
    post_family: FamilyFactory

    def __post_init__(self) -> None:
        if not self.tenants:
            raise DeploymentError("scenario needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise DeploymentError(f"tenant names must be unique, got {names}")
        if self.duration_s <= 0:
            raise DeploymentError("scenario duration must be positive")
        if not 0.0 < self.drift_at_s < self.duration_s:
            raise DeploymentError(
                "drift_at_s must fall strictly inside the scenario horizon"
            )


def generate_graph_requests(
    scenario: GraphDriftScenario, seed: SeedLike
) -> List[GraphRequest]:
    """Materialize the drifting request stream, time-ordered.

    Per tenant, three child generators are spawned (arrival times,
    pre-drift family, post-drift family); graphs are drawn in arrival
    order from the family active at each arrival.  Ties in arrival time
    break by tenant order then per-tenant sequence, exactly like
    :func:`repro.cluster.workload.generate_requests`.
    """
    rngs = spawn_rngs(seed, 3 * len(scenario.tenants))
    merged: List[Tuple[float, int, int, str, ComputationalGraph, int, str]] = []
    for tenant_index, tenant in enumerate(scenario.tenants):
        arrival_rng, pre_rng, post_rng = rngs[
            3 * tenant_index : 3 * tenant_index + 3
        ]
        pre_family = scenario.pre_family(pre_rng)
        post_family = scenario.post_family(post_rng)
        times = tenant.arrivals.sample_times(
            tenant.rate_per_s, scenario.duration_s, arrival_rng
        )
        for sequence, arrival in enumerate(times):
            drifted = arrival >= scenario.drift_at_s
            family = post_family if drifted else pre_family
            merged.append(
                (
                    arrival,
                    tenant_index,
                    sequence,
                    tenant.name,
                    family.sample(),
                    tenant.num_stages,
                    "post" if drifted else "pre",
                )
            )
    merged.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
    return [
        GraphRequest(
            index=i,
            tenant=tenant,
            graph=graph,
            num_stages=num_stages,
            arrival_s=arrival,
            phase=phase,
        )
        for i, (arrival, _, _, tenant, graph, num_stages, phase) in enumerate(
            merged
        )
    ]


__all__ = [
    "FamilyFactory",
    "GraphDriftScenario",
    "GraphRequest",
    "GraphTenantSpec",
    "generate_graph_requests",
]
