"""Fleet modeling: heterogeneous pipelined-TPU replicas behind one router.

A :class:`Fleet` is a set of :class:`Replica` instances — each a
pipelined Edge TPU rig with its own stage count, device spec and bus
topology — that all serve the same model catalog.  Building a fleet runs
every ``(model, stage count)`` pair through a shared
:class:`~repro.service.SchedulingService`, so replicas with equal stage
counts reuse each other's schedules straight from the fingerprint cache
(the build stats record exactly how much reuse happened).

Per-replica, per-model :class:`ModelDeployment` entries carry the
:class:`~repro.tpu.pipeline.StageProfile` list the fleet simulator and
the SLO-aware router both consume: the profiles determine true simulated
timing, while their aggregate ``period_seconds`` / ``latency_seconds``
estimates feed routing decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import DeploymentError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.postprocess import postprocess_schedule
from repro.service import SchedulingService, ShardedSchedulingService
from repro.tpu.latency import weight_stream_seconds
from repro.tpu.pipeline import StageProfile, compute_stage_profiles
from repro.tpu.quantize import is_quantized, quantize_graph
from repro.tpu.spec import EdgeTPUSpec, default_spec

_BUS_MODES = ("per_stage", "shared")


@dataclass(frozen=True)
class ReplicaSpec:
    """Static description of one pipeline replica."""

    name: str
    num_stages: int
    spec: EdgeTPUSpec = field(default_factory=default_spec)
    bus_mode: str = "per_stage"

    def __post_init__(self) -> None:
        if self.num_stages < 1:
            raise DeploymentError(
                f"replica {self.name!r} needs at least one stage"
            )
        if self.bus_mode not in _BUS_MODES:
            raise DeploymentError(
                f"replica {self.name!r}: unknown bus_mode {self.bus_mode!r}; "
                f"choose from {_BUS_MODES}"
            )


@dataclass(frozen=True)
class ModelDeployment:
    """One model compiled onto one replica.

    ``period_seconds`` is the steady-state bottleneck period (the
    marginal cost of queueing one more request of this model on the
    replica); ``latency_seconds`` is the uncontended pipeline traversal
    time (the cost of the *last* request in a queue).  Both are derived
    from the stage profiles, mirroring
    :meth:`repro.tpu.pipeline.PipelinedTpuSystem.theoretical_period`.
    """

    model: str
    profiles: Tuple[StageProfile, ...]
    period_seconds: float
    latency_seconds: float
    #: Extra pipeline traversal time when the replica's stages must
    #: reload this model's resident (on-chip) weights because the
    #: previous inference ran a different model.
    switch_latency_seconds: float
    #: Extra bottleneck occupancy of one model switch (the worst stage's
    #: reload) — the marginal queueing cost of breaking model affinity.
    switch_period_seconds: float
    schedule_cache_hit: bool

    @property
    def num_stages(self) -> int:
        return len(self.profiles)


def _deployment_estimates(
    profiles: Sequence[StageProfile], bus_mode: str, spec: EdgeTPUSpec
) -> Tuple[float, float, float, float]:
    device = max((p.device_seconds for p in profiles), default=0.0)
    if bus_mode == "shared":
        link = sum(p.link_seconds for p in profiles)
    else:
        link = max((p.link_seconds for p in profiles), default=0.0)
    period = max(device, link)
    latency = sum(
        p.input_transfer_seconds
        + p.weight_stream_seconds
        + p.compute_seconds
        + p.output_transfer_seconds
        for p in profiles
    )
    reloads = [
        weight_stream_seconds(p.on_chip_bytes, spec) for p in profiles
    ]
    return period, latency, sum(reloads), max(reloads, default=0.0)


class Replica:
    """One fleet member: a replica spec plus its model deployments."""

    def __init__(
        self, spec: ReplicaSpec, deployments: Mapping[str, ModelDeployment]
    ) -> None:
        self.spec = spec
        self.deployments = dict(deployments)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_stages(self) -> int:
        return self.spec.num_stages

    def deployment(self, model: str) -> ModelDeployment:
        try:
            return self.deployments[model]
        except KeyError:
            raise DeploymentError(
                f"model {model!r} is not deployed on replica {self.name!r}; "
                f"available: {sorted(self.deployments)}"
            ) from None


@dataclass(frozen=True)
class FleetBuildStats:
    """Schedule-reuse accounting of one :func:`build_fleet` call."""

    schedule_requests: int
    cache_hits: int
    unique_solves: int

    @property
    def hit_rate(self) -> float:
        if self.schedule_requests == 0:
            return 0.0
        return self.cache_hits / self.schedule_requests


class Fleet:
    """An ordered set of replicas sharing one model catalog."""

    def __init__(
        self,
        replicas: Sequence[Replica],
        models: Mapping[str, ComputationalGraph],
        build_stats: Optional[FleetBuildStats] = None,
    ) -> None:
        if not replicas:
            raise DeploymentError("a fleet needs at least one replica")
        names = [r.name for r in replicas]
        if len(set(names)) != len(names):
            raise DeploymentError(f"replica names must be unique, got {names}")
        self.replicas = list(replicas)
        self.models = dict(models)
        self.build_stats = build_stats or FleetBuildStats(0, 0, 0)

    def __len__(self) -> int:
        return len(self.replicas)

    def replica(self, name: str) -> Replica:
        for replica in self.replicas:
            if replica.name == name:
                return replica
        raise DeploymentError(f"no replica named {name!r} in the fleet")


def build_fleet(
    replica_specs: Sequence[ReplicaSpec],
    models: Mapping[str, ComputationalGraph],
    scheduler: Optional[object] = None,
    service: Optional[object] = None,
    num_shards: int = 1,
    decode_workers: int = 0,
    store_dir: Optional[str] = None,
) -> Fleet:
    """Compile every model onto every replica through one shared service.

    Exactly one of ``scheduler`` / ``service`` must be supplied.  A bare
    scheduler gets a temporary serving tier stood in front of it: a
    :class:`SchedulingService` by default, or a
    :class:`~repro.service.ShardedSchedulingService` with
    ``num_shards > 1`` — large catalogs then compile across per-shard
    solver workers concurrently.  ``decode_workers > 0`` additionally
    moves RESPECT policy decodes into that many worker *processes* (see
    :class:`~repro.service.DecodeWorkerPool`) for the owned tier's
    lifetime; schedules are bit-identical either way.  An explicit
    ``service`` may be either kind (``num_shards`` and
    ``decode_workers`` are ignored for it — configure them on the
    service you pass).

    With ``store_dir=`` the owned tier mounts a persistent
    :class:`~repro.service.DiskScheduleStore` at that directory (see
    :class:`~repro.service.SchedulingService`), so fleet builds reuse
    schedules **across process restarts**, not just within one build —
    rebuilding an unchanged catalog is pure cache hits with zero solver
    invocations, and ``build_stats`` counts the disk hits as reuse.
    Ignored when an explicit ``service`` is passed (persist by
    constructing that service with its own ``store_dir=``).

    Schedules depend only on ``(graph, num_stages, scheduler options)``,
    so replicas sharing a stage count are answered from the serving
    tier's fingerprint cache — fingerprint routing pins each
    ``(model, stage count)`` pair to one shard, so sharding loses no
    reuse; the returned fleet's ``build_stats`` report what was
    observed.  Each replica's models are submitted as one concurrent
    burst (the micro-batcher aggregates them), while replicas proceed
    in order so cross-replica repeats stay countable cache hits.  Stage
    *profiles* are still computed per replica, because they depend on
    each replica's device/link spec.
    """
    if not replica_specs:
        raise DeploymentError("build_fleet needs at least one replica spec")
    if not models:
        raise DeploymentError("build_fleet needs at least one model")
    if (scheduler is None) == (service is None):
        raise DeploymentError(
            "supply exactly one of scheduler= or service= to build_fleet"
        )
    names = [spec.name for spec in replica_specs]
    if len(set(names)) != len(names):
        raise DeploymentError(f"replica names must be unique, got {names}")

    quantized: Dict[str, ComputationalGraph] = {
        name: graph if is_quantized(graph) else quantize_graph(graph)
        for name, graph in models.items()
    }

    owned = service is None
    if owned:
        if num_shards > 1:
            service = ShardedSchedulingService(
                scheduler,
                num_shards=num_shards,
                decode_workers=decode_workers,
                store_dir=store_dir,
            )
        else:
            service = SchedulingService(
                scheduler,
                decode_workers=decode_workers,
                store_dir=store_dir,
            )
    try:
        requests = 0
        hits = 0
        replicas: List[Replica] = []
        model_names = sorted(quantized)
        for spec in replica_specs:
            futures = [
                service.submit(quantized[model_name], spec.num_stages)
                for model_name in model_names
            ]
            deployments: Dict[str, ModelDeployment] = {}
            for model_name, future in zip(model_names, futures):
                graph = quantized[model_name]
                result = future.result()
                requests += 1
                # Reuse = answered without a dedicated solve: a cache
                # hit, or (content-identical models submitted in the
                # same burst) a request coalesced onto a sibling's
                # in-flight solve — the concurrent submission must not
                # under-report reuse the sequential loop counted as
                # hits.
                cache_hit = bool(
                    result.extras.get("cache_hit", False)
                ) or bool(getattr(future, "_respect_coalesced", False))
                hits += cache_hit
                schedule = postprocess_schedule(result.schedule)
                profiles = tuple(
                    compute_stage_profiles(graph, schedule, spec.spec)
                )
                period, latency, switch_latency, switch_period = (
                    _deployment_estimates(profiles, spec.bus_mode, spec.spec)
                )
                deployments[model_name] = ModelDeployment(
                    model=model_name,
                    profiles=profiles,
                    period_seconds=period,
                    latency_seconds=latency,
                    switch_latency_seconds=switch_latency,
                    switch_period_seconds=switch_period,
                    schedule_cache_hit=cache_hit,
                )
            replicas.append(Replica(spec, deployments))
    finally:
        if owned:
            service.close()
    stats = FleetBuildStats(
        schedule_requests=requests,
        cache_hits=hits,
        unique_solves=requests - hits,
    )
    return Fleet(replicas, quantized, stats)
