"""Standard scenario and fleet suites for routing experiments.

The ROADMAP's scenario-diversity axis starts here: canned multi-tenant
workloads (skewed, homogeneous, bursty) over the paper's model zoo, plus
heterogeneous/homogeneous fleet spec builders.  Experiments, the example
walkthrough and the cluster benchmark all draw from this module so every
entry point compares routers on the same footing.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.cluster.drifting import GraphDriftScenario, GraphTenantSpec
from repro.cluster.fleet import ReplicaSpec
from repro.cluster.workload import (
    BurstyArrivals,
    Scenario,
    TenantSpec,
)
from repro.errors import DeploymentError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.families import AttentionAugmentedFamily, ComputeUniformFamily
from repro.models.zoo import build_model
from repro.tpu.spec import EdgeTPUSpec, UsbSpec, default_spec

#: The three smallest zoo members — the default fleet catalog.  Small
#: keeps scenario setup fast while still spanning a ~2.6x node-count
#: range, enough for per-model cost heterogeneity to matter.
DEFAULT_MODELS: Tuple[str, ...] = ("Xception", "ResNet50", "ResNet101")


def scenario_models(scenario: Scenario) -> Dict[str, ComputationalGraph]:
    """Build every zoo model the scenario's tenants reference."""
    return {name: build_model(name) for name in scenario.model_names()}


# ----------------------------------------------------------------------
# fleets
# ----------------------------------------------------------------------
def homogeneous_fleet(
    num_replicas: int = 4, num_stages: int = 4
) -> List[ReplicaSpec]:
    """``num_replicas`` identical per-stage-bus replicas."""
    return [
        ReplicaSpec(name=f"replica_{i}", num_stages=num_stages)
        for i in range(num_replicas)
    ]


def heterogeneous_fleet(num_replicas: int = 4) -> List[ReplicaSpec]:
    """A mixed rig: strong 4-stage boxes, a short pipeline, a slow link.

    The first two replicas are the paper's 4-TPU testbed; then a 2-stage
    replica (big models overflow its aggregate SRAM and pay weight
    streaming) and a 4-stage replica on a degraded shared USB controller
    alternate — the heterogeneity the SLO-aware router exploits.
    """
    if num_replicas < 1:
        raise DeploymentError("num_replicas must be >= 1")
    slow_usb = EdgeTPUSpec(
        name="coral_usb_slow",
        usb=UsbSpec(bandwidth_bytes_per_s=120e6, per_transfer_latency_s=4e-4),
    )
    fast = default_spec()
    template = [
        ReplicaSpec(name="fast_a", num_stages=4, spec=fast),
        ReplicaSpec(name="fast_b", num_stages=4, spec=fast),
        ReplicaSpec(name="short_pipe", num_stages=2, spec=fast),
        ReplicaSpec(
            name="slow_bus", num_stages=4, spec=slow_usb, bus_mode="shared"
        ),
    ]
    specs: List[ReplicaSpec] = []
    for i in range(num_replicas):
        base = template[i % len(template)]
        suffix = i // len(template)
        specs.append(
            base if suffix == 0 else replace(base, name=f"{base.name}_{suffix}")
        )
    return specs


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def skewed_tenants_scenario(
    duration_s: float = 4.0, load: float = 1.0
) -> Scenario:
    """One heavy tight-SLO tenant dominating two light background tenants.

    The heavy tenant's mix leans on the largest model; round-robin keeps
    sending those requests to replicas that serve them slowly, while an
    SLO-aware router steers them to fast 4-stage boxes — the scenario the
    router tests assert a strict attainment gap on.
    """
    return Scenario(
        name="skewed_tenants",
        tenants=(
            TenantSpec(
                name="heavy",
                model_mix={"ResNet101": 0.8, "ResNet50": 0.2},
                rate_per_s=18.0 * load,
                slo_seconds=0.25,
            ),
            TenantSpec(
                name="light_vision",
                model_mix={"Xception": 1.0},
                rate_per_s=6.0 * load,
                slo_seconds=0.5,
            ),
            TenantSpec(
                name="light_mixed",
                model_mix={"Xception": 0.5, "ResNet50": 0.5},
                rate_per_s=4.0 * load,
                slo_seconds=0.5,
            ),
        ),
        duration_s=duration_s,
    )


def homogeneous_scenario(
    duration_s: float = 4.0, load: float = 1.0
) -> Scenario:
    """A single steady tenant — the load-balancing baseline scenario."""
    return Scenario(
        name="homogeneous",
        tenants=(
            TenantSpec(
                name="steady",
                model_mix={"ResNet50": 1.0},
                rate_per_s=24.0 * load,
                slo_seconds=0.5,
            ),
        ),
        duration_s=duration_s,
    )


def bursty_scenario(duration_s: float = 4.0, load: float = 1.0) -> Scenario:
    """Bursty (MMPP) tenants against a steady background stream."""
    return Scenario(
        name="bursty",
        tenants=(
            TenantSpec(
                name="bursty_video",
                model_mix={"ResNet101": 0.5, "ResNet50": 0.5},
                rate_per_s=12.0 * load,
                slo_seconds=0.4,
                arrivals=BurstyArrivals(
                    burst_factor=4.0, on_fraction=0.2, mean_burst_s=0.4
                ),
            ),
            TenantSpec(
                name="steady_iot",
                model_mix={"Xception": 1.0},
                rate_per_s=8.0 * load,
                slo_seconds=0.6,
            ),
            TenantSpec(
                name="bursty_batch",
                model_mix={"ResNet50": 1.0},
                rate_per_s=6.0 * load,
                slo_seconds=1.0,
                arrivals=BurstyArrivals(
                    burst_factor=3.0, on_fraction=0.25, mean_burst_s=0.6
                ),
            ),
        ),
        duration_s=duration_s,
    )


def standard_suite(
    duration_s: float = 4.0, load: float = 1.0
) -> List[Tuple[Scenario, List[ReplicaSpec]]]:
    """The (scenario, fleet) pairs every routing comparison runs over."""
    return [
        (skewed_tenants_scenario(duration_s, load), heterogeneous_fleet(4)),
        (homogeneous_scenario(duration_s, load), homogeneous_fleet(3)),
        (bursty_scenario(duration_s, load), heterogeneous_fleet(4)),
    ]


# ----------------------------------------------------------------------
# drifting workloads (online adaptation)
# ----------------------------------------------------------------------
def attention_drift_scenario(
    duration_s: float = 40.0,
    drift_at_s: float = 16.0,
    load: float = 1.0,
    num_nodes: int = 24,
    num_stages: int = 4,
    num_heads: int = 4,
) -> GraphDriftScenario:
    """Tenants shift from uniform CNN graphs to attention-heavy ones.

    The canonical online-adaptation workload: two tenants submit
    compute-uniform DNN graphs (the distribution the shipped checkpoint
    is comfortable on) until ``drift_at_s``, then switch to
    attention-augmented graphs whose hot ``mhsa`` branches dominate the
    pipeline period — the regime where the frozen champion's decode
    order misfires and the packer cannot save it (see
    :mod:`repro.graphs.families`).  Used by
    :mod:`repro.experiments.online_adaptation`, the online benchmark and
    the acceptance tests.
    """
    return GraphDriftScenario(
        name="attention_drift",
        tenants=(
            GraphTenantSpec(
                name="vision_primary",
                rate_per_s=3.0 * load,
                num_stages=num_stages,
            ),
            GraphTenantSpec(
                name="vision_background",
                rate_per_s=1.5 * load,
                num_stages=num_stages,
            ),
        ),
        duration_s=duration_s,
        drift_at_s=drift_at_s,
        pre_family=lambda seed: ComputeUniformFamily(
            num_nodes=num_nodes, degree=3, seed=seed
        ),
        post_family=lambda seed: AttentionAugmentedFamily(
            num_nodes=num_nodes, degree=3, seed=seed, num_heads=num_heads
        ),
    )
