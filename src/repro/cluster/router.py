"""Routing and admission policies for the fleet simulator.

A :class:`Router` sees, per incoming request, one read-only
:class:`ReplicaState` per fleet member — queue depth, an outstanding-work
estimate, and per-model cost estimates derived from the replica's
:class:`~repro.tpu.pipeline.StageProfile` deployments — and returns the
index of the replica that should serve the request (or ``None`` to
reject it, for admission-controlled policies).

The interface is deliberately tiny and stateless-by-default so an RL
router (a policy network mapping the same state vector to a replica
choice) can slot in later without touching the simulator.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster.fleet import Replica
from repro.cluster.workload import Request
from repro.errors import DeploymentError


class ReplicaState:
    """Mutable routing-time view of one replica, owned by the simulator.

    ``busy_until_s`` is a fluid estimate maintained at routing time: each
    admitted request advances it by its model's bottleneck period on this
    replica.  The true discrete-event timing is computed independently by
    the simulator; routers only ever see this optimistic estimate, which
    is exactly the information a production dispatcher would have.
    """

    __slots__ = (
        "index",
        "replica",
        "queue_len",
        "busy_until_s",
        "served",
        "last_model",
    )

    def __init__(self, index: int, replica: Replica) -> None:
        self.index = index
        self.replica = replica
        self.queue_len = 0
        self.busy_until_s = 0.0
        self.served = 0
        #: Model of the most recently admitted request — routing's view
        #: of which weights are resident (model affinity).
        self.last_model: Optional[str] = None

    @property
    def name(self) -> str:
        return self.replica.name

    def outstanding_seconds(self, now: float) -> float:
        """Estimated backlog still ahead of a request admitted at ``now``."""
        return max(0.0, self.busy_until_s - now)

    def serves(self, model: str) -> bool:
        return model in self.replica.deployments

    def period_seconds(self, model: str) -> float:
        """Marginal queue cost of one more ``model`` request here."""
        return self.replica.deployment(model).period_seconds

    def latency_seconds(self, model: str) -> float:
        """Uncontended pipeline traversal time of ``model`` here."""
        return self.replica.deployment(model).latency_seconds

    def estimated_completion(self, model: str, now: float) -> float:
        """Predicted completion time of a ``model`` request admitted now.

        Accounts for the model-switch weight reload when this request
        would break the replica's current model affinity.
        """
        deployment = self.replica.deployment(model)
        switch = (
            deployment.switch_latency_seconds
            if self.last_model is not None and self.last_model != model
            else 0.0
        )
        return max(now, self.busy_until_s) + deployment.latency_seconds + switch

    # -- simulator-side bookkeeping ------------------------------------
    def admit(self, model: str, now: float) -> None:
        deployment = self.replica.deployment(model)
        cost = deployment.period_seconds
        if self.last_model is not None and self.last_model != model:
            cost += deployment.switch_period_seconds
        self.queue_len += 1
        self.busy_until_s = max(now, self.busy_until_s) + cost
        self.last_model = model

    def complete(self) -> None:
        self.queue_len -= 1
        self.served += 1


class Router:
    """Strategy interface: pick a replica for each arriving request."""

    name = "router"

    def reset(self, num_replicas: int) -> None:
        """Called once per simulation before the first request."""

    def route(
        self, request: Request, states: Sequence[ReplicaState], now: float
    ) -> Optional[int]:
        """Replica index to serve ``request``, or ``None`` to reject it."""
        raise NotImplementedError


def _eligible(
    request: Request, states: Sequence[ReplicaState]
) -> List[ReplicaState]:
    eligible = [s for s in states if s.serves(request.model)]
    if not eligible:
        raise DeploymentError(
            f"no replica deploys model {request.model!r} "
            f"(request from tenant {request.tenant!r})"
        )
    return eligible


class RoundRobinRouter(Router):
    """Cycle through the replicas, skipping ones without the model."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self, num_replicas: int) -> None:
        self._next = 0

    def route(
        self, request: Request, states: Sequence[ReplicaState], now: float
    ) -> Optional[int]:
        _eligible(request, states)
        for offset in range(len(states)):
            candidate = states[(self._next + offset) % len(states)]
            if candidate.serves(request.model):
                self._next = (candidate.index + 1) % len(states)
                return candidate.index
        return None  # unreachable: _eligible raised already


class LeastOutstandingWorkRouter(Router):
    """Join the replica with the least estimated outstanding work.

    Blind to the request's own cost on each candidate — it only balances
    backlog, which is ideal on homogeneous fleets and the classic
    production baseline (least-outstanding-requests weighted by work).
    """

    name = "least_outstanding_work"

    def route(
        self, request: Request, states: Sequence[ReplicaState], now: float
    ) -> Optional[int]:
        eligible = _eligible(request, states)
        return min(
            eligible, key=lambda s: (s.outstanding_seconds(now), s.index)
        ).index


class SloAwareRouter(Router):
    """Deadline-aware dispatch using per-replica, per-model cost estimates.

    Predicts each replica's completion time for *this* request — current
    backlog plus the model's pipeline latency on that replica's hardware
    — and picks the earliest.  Unlike least-outstanding-work it accounts
    for heterogeneity (a heavy model may be far slower on a 2-stage
    replica whose SRAM it overflows), so it keeps tight-SLO traffic off
    replicas that cannot meet the deadline even when they are idle.

    With ``reject_infeasible=True`` the router doubles as admission
    control: requests whose best predicted completion already misses the
    deadline are rejected instead of queued (protecting the SLO of the
    traffic behind them).
    """

    name = "slo_aware"

    def __init__(self, reject_infeasible: bool = False) -> None:
        self.reject_infeasible = reject_infeasible

    def route(
        self, request: Request, states: Sequence[ReplicaState], now: float
    ) -> Optional[int]:
        eligible = _eligible(request, states)
        best = min(
            eligible,
            key=lambda s: (s.estimated_completion(request.model, now), s.index),
        )
        if (
            self.reject_infeasible
            and best.estimated_completion(request.model, now) > request.deadline_s
        ):
            return None
        return best.index


def default_routers() -> List[Router]:
    """The three built-in policies, in increasing order of sophistication."""
    return [RoundRobinRouter(), LeastOutstandingWorkRouter(), SloAwareRouter()]
