"""Fleet simulation & SLO-aware routing over pipelined Edge TPU replicas.

The cluster layer composes everything below it end to end: multi-tenant
request streams (:mod:`~repro.cluster.workload`) are dispatched by a
:class:`Router` policy across a :class:`Fleet` of heterogeneous pipeline
replicas whose per-model stage profiles come from schedules served by
the shared :class:`~repro.service.SchedulingService`; the fleet
discrete-event simulation (:mod:`~repro.cluster.simulate`) then charges
true pipeline/link/bus contention — plus model-switch weight reloads —
and folds the run into a :class:`FleetReport` (per-tenant SLO
attainment and latency percentiles, per-replica utilization and energy).
"""

from repro.cluster.drifting import (
    GraphDriftScenario,
    GraphRequest,
    GraphTenantSpec,
    generate_graph_requests,
)
from repro.cluster.fleet import (
    Fleet,
    FleetBuildStats,
    ModelDeployment,
    Replica,
    ReplicaSpec,
    build_fleet,
)
from repro.cluster.report import FleetReport, ReplicaReport, TenantReport
from repro.cluster.router import (
    LeastOutstandingWorkRouter,
    ReplicaState,
    Router,
    RoundRobinRouter,
    SloAwareRouter,
    default_routers,
)
from repro.cluster.simulate import FleetSimulator, simulate_scenario
from repro.cluster.workload import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    Request,
    Scenario,
    TenantSpec,
    TraceArrivals,
    generate_requests,
)

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "Fleet",
    "FleetBuildStats",
    "FleetReport",
    "FleetSimulator",
    "GraphDriftScenario",
    "GraphRequest",
    "GraphTenantSpec",
    "LeastOutstandingWorkRouter",
    "ModelDeployment",
    "PoissonArrivals",
    "Replica",
    "ReplicaReport",
    "ReplicaSpec",
    "ReplicaState",
    "Request",
    "RoundRobinRouter",
    "Router",
    "Scenario",
    "SloAwareRouter",
    "TenantReport",
    "TenantSpec",
    "TraceArrivals",
    "build_fleet",
    "default_routers",
    "generate_graph_requests",
    "generate_requests",
    "simulate_scenario",
]
