"""Training datasets: synthetic graphs with exact-solver labels."""

from repro.datasets.labels import label_graph
from repro.datasets.synthetic import (
    LabeledExample,
    batch_examples,
    generate_dataset,
)

__all__ = [
    "LabeledExample",
    "batch_examples",
    "generate_dataset",
    "label_graph",
]
