"""Ground-truth labeling of training graphs with the exact scheduler.

RESPECT imitates "any optimal scheduling algorithm"; the teacher here is
the memory-and-communication-aware exact method (ILP by default, the
pure-Python branch-and-bound as an alternative).  A label is the exact
schedule's ``gamma`` sequence (Eq. 2) expressed as indices into the
encoder queue.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TrainingError
from repro.graphs.dag import ComputationalGraph
from repro.scheduling.bnb import BranchAndBoundScheduler
from repro.scheduling.ilp import IlpScheduler
from repro.scheduling.schedule import Schedule


def label_graph(
    graph: ComputationalGraph,
    num_stages: int,
    solver: str = "ilp",
) -> Tuple[Schedule, List[str]]:
    """Solve ``graph`` exactly and return ``(schedule, gamma_sequence)``."""
    if solver == "ilp":
        result = IlpScheduler().schedule(graph, num_stages)
    elif solver == "bnb":
        result = BranchAndBoundScheduler().schedule(graph, num_stages)
    else:
        raise TrainingError(f"unknown label solver {solver!r}")
    return result.schedule, result.schedule.to_sequence()
