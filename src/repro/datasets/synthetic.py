"""Labeled synthetic training set (the paper's data-independent recipe).

The paper trains on one million random |V| = 30 graphs, 200k per degree
in {2..6}.  This module implements the identical recipe with a
configurable count (CPU-scale runs use thousands); graphs are labeled by
the exact scheduler and batched by identical node count so the LSTM
unrolls uniformly within a batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.embedding.features import EmbeddingConfig
from repro.embedding.queue import EncoderQueue, build_encoder_queue
from repro.errors import TrainingError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.sampler import SyntheticDAGSampler
from repro.datasets.labels import label_graph
from repro.scheduling.schedule import Schedule
from repro.utils.rng import SeedLike, resolve_rng, spawn_rngs


@dataclass
class LabeledExample:
    """One training sample: a graph with its exact-schedule label."""

    graph: ComputationalGraph
    num_stages: int
    queue: EncoderQueue
    exact_schedule: Schedule
    gamma_names: List[str]
    gamma_indices: np.ndarray  # positions in the encoder queue

    @property
    def num_nodes(self) -> int:
        return len(self.queue)


def generate_dataset(
    count: int,
    num_nodes: int = 30,
    degrees: Sequence[int] = (2, 3, 4, 5, 6),
    stage_choices: Sequence[int] = (4, 5, 6),
    solver: str = "ilp",
    embedding: Optional[EmbeddingConfig] = None,
    seed: SeedLike = 0,
) -> List[LabeledExample]:
    """Sample and label ``count`` graphs (uniform mix over ``degrees``).

    Mirrors the paper's synthetic recipe: equal shares per degree, the
    number of pipeline stages drawn per sample from ``stage_choices``.
    ``embedding`` defaults to a fresh ``EmbeddingConfig()`` per call (a
    default argument would be evaluated once at definition time).
    """
    if embedding is None:
        embedding = EmbeddingConfig()
    if count < 1:
        raise TrainingError("dataset count must be positive")
    if not degrees:
        raise TrainingError("at least one degree is required")
    rng = resolve_rng(seed)
    sampler_rngs = spawn_rngs(rng, len(degrees))
    samplers = [
        SyntheticDAGSampler(num_nodes=num_nodes, degree=d, seed=r)
        for d, r in zip(degrees, sampler_rngs)
    ]
    examples: List[LabeledExample] = []
    for i in range(count):
        sampler = samplers[i % len(samplers)]
        graph = sampler.sample()
        num_stages = int(rng.choice(list(stage_choices)))
        schedule, gamma_names = label_graph(graph, num_stages, solver=solver)
        queue = build_encoder_queue(graph, embedding)
        position = {name: idx for idx, name in enumerate(queue.node_names)}
        gamma_indices = np.array([position[n] for n in gamma_names], dtype=int)
        examples.append(
            LabeledExample(
                graph=graph,
                num_stages=num_stages,
                queue=queue,
                exact_schedule=schedule,
                gamma_names=gamma_names,
                gamma_indices=gamma_indices,
            )
        )
    return examples


def batch_examples(
    examples: Sequence[LabeledExample],
    batch_size: int,
    rng: SeedLike = None,
    shuffle: bool = True,
) -> Iterator[Tuple[List[LabeledExample], np.ndarray, np.ndarray]]:
    """Yield ``(examples, features [B,T,F], targets [B,T])`` batches.

    Examples are grouped by node count so every batch unrolls the same
    number of steps; the final partial batch of each group is emitted too.
    """
    if batch_size < 1:
        raise TrainingError("batch_size must be positive")
    rng = resolve_rng(rng)
    groups: Dict[int, List[LabeledExample]] = {}
    for example in examples:
        groups.setdefault(example.num_nodes, []).append(example)
    group_keys = sorted(groups)
    if shuffle:
        rng.shuffle(group_keys)
    for key in group_keys:
        group = list(groups[key])
        if shuffle:
            rng.shuffle(group)
        for start in range(0, len(group), batch_size):
            chunk = group[start : start + batch_size]
            features = np.stack([ex.queue.features for ex in chunk])
            targets = np.stack([ex.gamma_indices for ex in chunk])
            yield chunk, features, targets


def stack_precedence(chunk: Sequence[LabeledExample]) -> np.ndarray:
    """Batch the per-example precedence matrices (``[B, T, T]`` bool)."""
    return np.stack([ex.queue.precedence for ex in chunk])
