"""Multiprocess policy decode: GIL-free workers behind the serving tier.

The serving layer's hot loop — greedy pointer-network decoding — is pure
numpy compute.  Python threads cannot parallelize it (the interpreter
serializes the non-BLAS portions under the GIL), so a sharded service on
an N-core host still decodes on roughly one core.  This module moves the
decode into *processes*:

:class:`DecodeWorkerPool`
    A pool of spawn-safe worker processes.  Each worker loads the policy
    weights **once** per published *weights epoch* (from a checkpoint the
    pool writes via :mod:`repro.rl.checkpoints`), then serves decode
    batches arriving as compact :mod:`repro.service.wire` payloads over
    its own duplex pipe.  Per-worker pipes — not one shared queue — are
    what makes crash recovery sound: a ``multiprocessing.Queue`` reader
    blocked in ``get()`` *holds the queue's shared lock*, so killing it
    would deadlock every surviving reader, whereas a killed pipe only
    EOFs its own endpoint.  That EOF is also the crash detector: the
    dead worker is respawned and its single in-flight task resubmitted
    elsewhere.  :meth:`DecodeWorkerPool.close` honors one shared
    deadline and fails still-pending submitters with exactly the
    in-process service's ``ServiceError("service closed")``.

:class:`WorkerDecodeScheduler`
    A drop-in scheduler adapter: same ``schedule`` / ``schedule_batch``
    interface and **bit-identical outputs** as the wrapped
    :class:`~repro.rl.respect.RespectScheduler`, but the greedy decode
    runs in the pool.  The ``rho`` packing and post-processing stay
    in-process (they are cheap and graph-object bound).

**Bit-identity as a checked invariant.**  The worker does not trust that
it rebuilt the right scheduler: after loading a weights epoch it
recomputes ``options_fingerprint()`` — which hashes the frozen float32
inference weights, the embedding configuration and every packing option —
and refuses to serve if it differs from the fingerprint recorded at
publish time.  Every decode request additionally carries the sender's
fingerprint, so a request can never silently run under the wrong weights
(e.g. mid hot-swap).  Together with the float32 weight round-trip being
lossless (f32 -> f64 sidecar load -> f32 cast), worker-decoded schedules
are bit-identical to in-process ones by construction, not by luck.

**Hot swap.**  :meth:`DecodeWorkerPool.publish_scheduler` assigns a fresh
monotonically increasing *weights epoch* and persists the scheduler's
frozen inference weights + decode configuration under it.  Requests are
tagged with their epoch; a worker lazily reloads when it sees a tag newer
(or older — rolling swaps may interleave) than what it has in memory, so
``swap_scheduler`` / ``promote_challenger`` atomically retarget every
worker without any worker-side coordination.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import DecodeWorkerError, SchedulingError, ServiceError
from repro.graphs.dag import ComputationalGraph
from repro.obs.trace import NOOP_SPAN, current_span
from repro.scheduling.postprocess import postprocess_schedule
from repro.scheduling.schedule import ScheduleResult
from repro.scheduling.sequence import normalize_stage_counts, pack_sequence
from repro.service import wire
from repro.utils.timing import Timer

#: Maximum times one decode task is resubmitted after worker crashes
#: before it fails with :class:`DecodeWorkerError`.
_MAX_TASK_RETRIES = 3


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
class _WorkerDecoder:
    """One loaded weights epoch inside a worker process."""

    def __init__(self, epoch: int, scheduler: object) -> None:
        self.epoch = epoch
        self.scheduler = scheduler

    @classmethod
    def load(cls, weights_dir: str, epoch: int) -> "_WorkerDecoder":
        from repro.embedding.features import EmbeddingConfig
        from repro.rl.checkpoints import load_checkpoint, read_metadata
        from repro.rl.respect import RespectScheduler

        name = f"epoch-{epoch}"
        policy = load_checkpoint(weights_dir, name)
        meta = read_metadata(weights_dir, name)
        config = meta.get("decode_config")
        if not isinstance(config, dict):
            raise DecodeWorkerError(
                f"checkpoint {name!r} carries no decode_config sidecar "
                f"metadata; it was not written by DecodeWorkerPool."
                f"publish_scheduler"
            )
        scheduler = RespectScheduler(
            policy=policy,
            embedding_config=EmbeddingConfig(**config["embedding"]),
            budget_slack=config["budget_slack"],
            enforce_siblings=config["enforce_siblings"],
            constrain_topological=config["constrain_topological"],
            use_vectorized_decode=config["use_vectorized_decode"],
        )
        expected = config.get("options_fingerprint")
        actual = scheduler.options_fingerprint()
        if expected is not None and actual != expected:
            # The rebuilt scheduler would NOT produce bit-identical
            # schedules (weight corruption, config drift, version skew).
            # Refusing here is what turns bit-identity from an
            # assumption into a checked invariant.
            raise DecodeWorkerError(
                f"rebuilt scheduler for weights epoch {epoch} fingerprints "
                f"as {actual[:12]}... but {expected[:12]}... was published; "
                f"refusing to serve non-identical decodes"
            )
        return cls(epoch, scheduler)

    def decode(self, payload: bytes) -> bytes:
        start_s = time.time()
        request = wire.decode_decode_request(payload)
        fingerprint = self.scheduler.options_fingerprint()  # type: ignore[attr-defined]
        if request.options_key is not None and request.options_key != fingerprint:
            raise DecodeWorkerError(
                f"decode request targets scheduler "
                f"{request.options_key[:12]}... but weights epoch "
                f"{self.epoch} holds {fingerprint[:12]}..."
            )
        queues, rollout, lengths = self.scheduler._decode_batch(  # type: ignore[attr-defined]
            request.graphs
        )
        orders = [
            queue.names_for(rollout.actions[b, : lengths[b]])
            for b, queue in enumerate(queues)
        ]
        log_probs = [float(rollout.log_prob[b]) for b in range(len(queues))]
        spans = None
        if request.trace is not None:
            # No tracer lives in the worker process: the sub-span is a
            # plain record (wall-clock timestamps, comparable with the
            # parent's) shipped home inside the response frame, where
            # the parent-side Tracer.ingest() re-exports it.
            spans = [
                {
                    "name": "worker.decode",
                    "trace_id": request.trace["trace_id"],
                    "span_id": os.urandom(8).hex(),
                    "parent_id": request.trace["span_id"],
                    "start_s": start_s,
                    "end_s": time.time(),
                    "status": "ok",
                    "attrs": {
                        "pid": os.getpid(),
                        "epoch": self.epoch,
                        "batch_size": len(request.graphs),
                    },
                }
            ]
        return wire.encode_decode_response(orders, log_probs, spans=spans)


def _decode_worker_main(conn, weights_dir: str) -> None:
    """Worker process entry point (module-level so ``spawn`` can import it).

    Loops over ``(task_id, epoch, payload)`` tasks on its private duplex
    pipe; a ``None`` sentinel (or the parent closing the pipe) shuts the
    worker down.  Weights are loaded lazily per epoch and kept until a
    task tags a different epoch (hot swap).  Any per-task failure is
    reported back as a string — the worker itself stays alive.
    """
    decoder: Optional[_WorkerDecoder] = None
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        task_id, epoch, payload = task
        try:
            if decoder is None or decoder.epoch != epoch:
                decoder = _WorkerDecoder.load(weights_dir, epoch)
            response = decoder.decode(payload)
        except BaseException as exc:  # report, never die on a bad task
            conn.send((task_id, f"{type(exc).__name__}: {exc}", None))
            continue
        conn.send((task_id, None, response))


# ----------------------------------------------------------------------
# pool
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DecodePoolStats:
    """Counters of a :class:`DecodeWorkerPool`."""

    num_workers: int
    start_method: str
    #: Latest published weights epoch (0 = nothing published yet).
    epoch: int
    #: Successfully completed decode batches.
    decodes: int
    #: Worker processes respawned after a crash.
    respawns: int
    #: Submitted batches still awaiting a result.
    pending: int
    started: bool
    closed: bool


class _PendingDecode:
    """One submitted batch awaiting its worker result."""

    __slots__ = (
        "event",
        "payload",
        "epoch",
        "response",
        "error",
        "resubmits",
        "span",
        "attempt",
    )

    def __init__(self, payload: bytes, epoch: int, span=None) -> None:
        self.event = threading.Event()
        self.payload = payload
        self.epoch = epoch
        self.response: Optional[bytes] = None
        self.error: Optional[BaseException] = None
        self.resubmits = 0
        #: Caller's round-trip span (None when the request is untraced).
        self.span = span
        #: Span of the current dispatch; a crash ends it ("crashed") and
        #: the resubmission opens a fresh one — retries are visible as
        #: sibling attempt spans.
        self.attempt = None


class _Worker:
    """One worker process plus the parent's end of its private pipe."""

    __slots__ = ("process", "conn", "inflight")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        #: Task id currently decoding in this worker (None = idle).
        self.inflight: Optional[int] = None


class DecodeWorkerPool:
    """Spawn-safe decode worker processes, each behind a private pipe.

    Parameters
    ----------
    num_workers:
        Worker process count (>= 1).
    start_method:
        ``multiprocessing`` start method; ``"spawn"`` (the default) is
        the only method that is safe everywhere — forking a process that
        holds service locks and live threads is not.
    max_task_retries:
        How many worker crashes one task survives (via resubmission)
        before failing with :class:`DecodeWorkerError`.

    Workers start lazily on the first :meth:`submit`, so constructing a
    pool (e.g. for a service that may never see respect traffic) costs
    only a temp directory.  Weights travel through that directory as
    :mod:`repro.rl.checkpoints` artifacts — content-validated files, not
    pickled live objects — which is what makes ``spawn`` workers cheap to
    retarget and safe to respawn.
    """

    def __init__(
        self,
        num_workers: int = 2,
        *,
        start_method: str = "spawn",
        max_task_retries: int = _MAX_TASK_RETRIES,
    ) -> None:
        if num_workers < 1:
            raise ServiceError(f"num_workers must be >= 1, got {num_workers}")
        if max_task_retries < 0:
            raise ServiceError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        self.num_workers = num_workers
        self.start_method = start_method
        self.max_task_retries = max_task_retries
        self._ctx = multiprocessing.get_context(start_method)
        self._weights_dir = tempfile.mkdtemp(prefix="respect-decode-pool-")
        self._lock = threading.Lock()
        self._tasks: Dict[int, _PendingDecode] = {}
        self._task_counter = 0
        self._epoch = 0
        self._decodes = 0
        self._respawns = 0
        self._started = False
        self._closed = False
        self._workers: List[_Worker] = []
        #: Task ids accepted but not yet dispatched to an idle worker.
        self._backlog: Deque[int] = deque()
        self._collector: Optional[threading.Thread] = None
        # Reclaim the weights directory even if close() is never called.
        self._weights_finalizer = weakref.finalize(
            self, shutil.rmtree, self._weights_dir, True
        )

    # ------------------------------------------------------------------
    # publishing weights epochs
    # ------------------------------------------------------------------
    def publish_scheduler(self, scheduler: object) -> int:
        """Persist ``scheduler``'s decode state under a new weights epoch.

        Saves the scheduler's frozen inference policy plus its
        ``decode_config()`` (embedding/packing options and the published
        ``options_fingerprint``) as a checkpoint in the pool's weights
        directory, and returns the epoch token to tag decode requests
        with.  Workers retarget lazily: the first task tagged with the
        new epoch makes its worker reload — no pause, no coordination.
        """
        from repro.rl.checkpoints import checkpoint_metadata, save_checkpoint

        policy = getattr(scheduler, "inference_policy", None)
        if policy is None:
            policy = getattr(scheduler, "policy", None)
        if policy is None:
            raise ServiceError(
                f"{type(scheduler).__name__} exposes no inference_policy/"
                f"policy to publish"
            )
        if not callable(getattr(scheduler, "decode_config", None)):
            raise ServiceError(
                f"{type(scheduler).__name__} exposes no decode_config(); "
                f"only RESPECT-style schedulers can run in decode workers"
            )
        config = scheduler.decode_config()  # type: ignore[attr-defined]
        with self._lock:
            if self._closed:
                raise ServiceError("decode worker pool is closed")
            self._epoch += 1
            epoch = self._epoch
            name = f"epoch-{epoch}"
            meta = checkpoint_metadata(
                policy, name, source="repro.service.workers"
            )
            meta["decode_config"] = config
            # Saved under the lock so the epoch is fully on disk before
            # any submit can observe it as the latest.
            save_checkpoint(policy, self._weights_dir, name, metadata=meta)
        return epoch

    @property
    def epoch(self) -> int:
        """Latest published weights epoch (0 until the first publish)."""
        with self._lock:
            return self._epoch

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def submit(
        self,
        payload: bytes,
        epoch: Optional[int] = None,
        timeout: Optional[float] = None,
        *,
        span=None,
    ) -> bytes:
        """Decode one wire-format batch in a worker; returns wire bytes.

        ``epoch`` selects the weights (default: latest published).
        Blocks until the result arrives; raises
        :class:`DecodeWorkerError` on worker-side failure or timeout and
        ``ServiceError("service closed")`` when the pool closes while the
        request is in flight.  ``span`` (an active trace span) makes the
        pool emit one ``worker.attempt`` child per dispatch, so crash
        retries show up as extra attempt spans.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("decode worker pool is closed")
            if self._epoch == 0:
                raise ServiceError(
                    "no scheduler published; call publish_scheduler() first"
                )
            if epoch is None:
                epoch = self._epoch
            elif epoch < 1 or epoch > self._epoch:
                raise ServiceError(
                    f"unknown weights epoch {epoch}; published epochs are "
                    f"1..{self._epoch}"
                )
            self._ensure_started_locked()
            self._task_counter += 1
            task_id = self._task_counter
            pending = _PendingDecode(payload, epoch, span)
            self._tasks[task_id] = pending
            self._backlog.append(task_id)
            self._dispatch_locked()
        if not pending.event.wait(timeout):
            with self._lock:
                self._tasks.pop(task_id, None)
                attempt, pending.attempt = pending.attempt, None
            if attempt is not None:
                attempt.end(status="timeout")
            raise DecodeWorkerError(
                f"decode did not complete within {timeout}s"
            )
        if pending.error is not None:
            raise pending.error
        assert pending.response is not None
        return pending.response

    def _ensure_started_locked(self) -> None:
        if self._started:
            return
        for index in range(self.num_workers):
            self._workers.append(self._spawn_worker_locked(index))
        self._collector = threading.Thread(
            target=self._collect_loop,
            name="respect-decode-collector",
            daemon=True,
        )
        self._collector.start()
        self._started = True

    def _spawn_worker_locked(self, index: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_decode_worker_main,
            args=(child_conn, self._weights_dir),
            name=f"respect-decode-worker-{index}",
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the child end so a worker death
        # surfaces as EOF on parent_conn — that EOF *is* crash detection.
        child_conn.close()
        return _Worker(process, parent_conn)

    # ------------------------------------------------------------------
    # dispatch + result collection + crash recovery
    # ------------------------------------------------------------------
    def _dispatch_locked(self) -> None:
        """Hand backlog tasks to idle workers (callers hold the lock).

        At most one task is in flight per worker, and only an *idle*
        worker — one blocked in ``recv`` — is sent to, so ``send`` can
        never deadlock on a full pipe.  Runs from ``submit`` (new task),
        the collector (a worker just went idle) and crash recovery (a
        resubmitted task needs a new home).
        """
        if self._closed:
            return
        idle = [
            worker
            for worker in self._workers
            if worker.inflight is None and worker.process.is_alive()
        ]
        for worker in idle:
            task_id = None
            while self._backlog:
                candidate = self._backlog.popleft()
                if candidate in self._tasks:  # not timed out / failed
                    task_id = candidate
                    break
            if task_id is None:
                return
            pending = self._tasks[task_id]
            if pending.span is not None:
                # One attempt span per dispatch (attempt numbering is
                # 1-based); crash recovery ends it as "crashed" and the
                # resubmitted dispatch opens the next one.
                pending.attempt = pending.span.child(
                    "worker.attempt", attempt=pending.resubmits + 1
                )
            try:
                worker.conn.send((task_id, pending.epoch, pending.payload))
            except (OSError, ValueError, BrokenPipeError):
                # The worker died between is_alive() and send(); its
                # EOF will reach the collector, which respawns it and
                # finds this task via ``inflight``.
                worker.inflight = task_id
                continue
            worker.inflight = task_id

    def _collect_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                conns = {worker.conn: worker for worker in self._workers}
            try:
                ready = connection.wait(list(conns), timeout=0.2)
            except OSError:
                ready = []
            for conn in ready:
                worker = conns[conn]
                try:
                    item = conn.recv()
                except (EOFError, OSError):
                    self._reap_and_respawn(worker)
                    continue
                self._complete(worker, item)
            with self._lock:
                if self._closed:
                    return
                self._dispatch_locked()

    def _complete(self, worker: _Worker, item) -> None:
        task_id, error, response = item
        with self._lock:
            if worker.inflight == task_id:
                worker.inflight = None
            pending = self._tasks.pop(task_id, None)
            if pending is None:
                # The waiter is gone (timed out or failed at close).
                return
            self._decodes += 1
            attempt, pending.attempt = pending.attempt, None
        if attempt is not None:
            attempt.end(status="error" if error is not None else None)
        if error is not None:
            pending.error = DecodeWorkerError(
                f"decode worker failed: {error}"
            )
        else:
            pending.response = response
        pending.event.set()

    def _reap_and_respawn(self, worker: _Worker) -> None:
        """Replace one dead worker; resubmit (or fail) its in-flight task.

        Per-worker pipes make the lost work precisely attributable: only
        the task the dead worker was decoding is affected.  Each
        resubmission burns one retry, so a task surviving
        ``max_task_retries`` crashes fails loudly instead of looping
        forever.
        """
        failed: Optional[_PendingDecode] = None
        crashed_attempt = None
        with self._lock:
            if self._closed or worker not in self._workers:
                return
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join(0.2)
            index = self._workers.index(worker)
            self._respawns += 1
            self._workers[index] = self._spawn_worker_locked(index)
            task_id = worker.inflight
            if task_id is not None and task_id in self._tasks:
                pending = self._tasks[task_id]
                crashed_attempt, pending.attempt = pending.attempt, None
                pending.resubmits += 1
                if pending.resubmits > self.max_task_retries:
                    del self._tasks[task_id]
                    failed = pending
                else:
                    self._backlog.appendleft(task_id)
            self._dispatch_locked()
        if crashed_attempt is not None:
            crashed_attempt.end(status="crashed")
        if failed is not None:
            failed.error = DecodeWorkerError(
                f"decode task abandoned after {self.max_task_retries} "
                f"worker crashes"
            )
            failed.event.set()

    # ------------------------------------------------------------------
    # stats / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> DecodePoolStats:
        with self._lock:
            return DecodePoolStats(
                num_workers=self.num_workers,
                start_method=self.start_method,
                epoch=self._epoch,
                decodes=self._decodes,
                respawns=self._respawns,
                pending=len(self._tasks),
                started=self._started,
                closed=self._closed,
            )

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Shut down workers; fail pending submitters; reclaim weights.

        Idempotent.  ``timeout`` is one shared deadline for the whole
        pool (mirroring :meth:`SchedulingService.close`): worker joins
        consume a common budget, stragglers past it are terminated, then
        killed.  Threads still waiting in :meth:`submit` raise exactly
        ``ServiceError("service closed")`` — the same exception the
        in-process service uses to fail its pending futures.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
            collector = self._collector
            pending = list(self._tasks.values())
            self._tasks.clear()
        for item in pending:
            attempt, item.attempt = item.attempt, None
            if attempt is not None:
                attempt.end(status="closed")
            item.error = ServiceError("service closed")
            item.event.set()
        deadline = None if timeout is None else time.monotonic() + timeout
        if started:
            # The collector polls at 0.2s; joining it first means no
            # thread but this one touches the pipes below.
            if collector is not None:
                remaining = (
                    1.0
                    if deadline is None
                    else max(0.3, deadline - time.monotonic())
                )
                collector.join(remaining)
            for worker in self._workers:
                try:
                    worker.conn.send(None)
                except (OSError, ValueError):
                    pass
            for worker in self._workers:
                remaining = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                worker.process.join(remaining)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(0.2)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(0.2)
                try:
                    worker.conn.close()
                except OSError:
                    pass
        self._weights_finalizer()

    def __enter__(self) -> "DecodeWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# scheduler adapter
# ----------------------------------------------------------------------
def supports_worker_decode(scheduler: object) -> bool:
    """Can ``scheduler`` run its decode in a :class:`DecodeWorkerPool`?

    True only for RESPECT-style schedulers: a frozen
    ``inference_policy``, an ``embedding_config``, packing options and a
    weight-covering ``options_fingerprint()`` / ``decode_config()`` pair.
    Heuristic baselines (and already-wrapped adapters) return False, so
    callers can unconditionally attempt wrapping and fall back to
    in-process serving.
    """
    if isinstance(scheduler, WorkerDecodeScheduler):
        return False
    from repro.rl.ptrnet import PointerNetworkPolicy

    policy = getattr(scheduler, "inference_policy", None)
    if not isinstance(policy, PointerNetworkPolicy):
        return False
    if getattr(scheduler, "embedding_config", None) is None:
        return False
    if not callable(getattr(scheduler, "options_fingerprint", None)):
        return False
    if not callable(getattr(scheduler, "decode_config", None)):
        return False
    return all(
        hasattr(scheduler, attr)
        for attr in (
            "budget_slack",
            "enforce_siblings",
            "constrain_topological",
        )
    )


def unwrap_scheduler(scheduler: object) -> object:
    """The in-process scheduler behind ``scheduler``.

    Sees through a :class:`WorkerDecodeScheduler` (``__getattr__``
    delegation covers attribute reads, but not ``isinstance`` checks —
    the online-adaptation loop's champion checks go through here);
    anything else is returned unchanged.
    """
    if isinstance(scheduler, WorkerDecodeScheduler):
        return scheduler.inner
    return scheduler


class WorkerDecodeScheduler:
    """Scheduler adapter routing the greedy decode through a worker pool.

    Wraps a :class:`~repro.rl.respect.RespectScheduler` (``inner``) whose
    weights were published to ``pool`` as ``epoch``.  ``schedule`` /
    ``schedule_batch`` serialize the graphs to wire format, decode in a
    worker process, then pack and post-process *in-process* with the
    inner scheduler's exact options — so results are bit-identical to
    calling the inner scheduler directly (the worker checks this, see
    the module docstring).

    ``options_fingerprint()`` delegates to the inner scheduler: cache
    keys are unchanged by where the decode runs, which is precisely the
    bit-identity contract.  Unknown attributes delegate too, so code
    reading ``service.scheduler.policy`` (e.g. the online-adaptation
    loop) sees through the adapter.
    """

    def __init__(
        self, inner: object, pool: DecodeWorkerPool, epoch: int
    ) -> None:
        self._inner = inner
        self._pool = pool
        self._epoch = epoch

    # -- transparency --------------------------------------------------
    @property
    def inner(self) -> object:
        """The wrapped in-process scheduler."""
        return self._inner

    @property
    def pool(self) -> DecodeWorkerPool:
        return self._pool

    @property
    def epoch(self) -> int:
        """The weights epoch this adapter tags its decode requests with."""
        return self._epoch

    @property
    def method_name(self) -> str:
        return self._inner.method_name  # type: ignore[attr-defined]

    def options_fingerprint(self) -> str:
        return self._inner.options_fingerprint()  # type: ignore[attr-defined]

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    # -- decoding ------------------------------------------------------
    def _decode_remote(
        self, graphs: Sequence[ComputationalGraph]
    ) -> Tuple[List[List[str]], List[float]]:
        # Propagate the active trace (if any) across the process
        # boundary: the round-trip span's ids travel in the request
        # frame, the worker's sub-span records come home in the
        # response frame, and ingest() re-exports them — one span tree
        # spanning two processes.
        parent = current_span()
        roundtrip = None
        trace_ctx = None
        if parent is not None:
            roundtrip = parent.child(
                "decode.workers", batch_size=len(graphs), epoch=self._epoch
            )
            trace_ctx = {
                "trace_id": roundtrip.trace_id,
                "span_id": roundtrip.span_id,
            }
        payload = wire.encode_decode_request(
            graphs, options_key=self.options_fingerprint(), trace=trace_ctx
        )
        try:
            raw = self._pool.submit(payload, epoch=self._epoch, span=roundtrip)
            response = wire.decode_decode_response(raw)
        except BaseException:
            if roundtrip is not None:
                roundtrip.end(status="error")
            raise
        if roundtrip is not None:
            if response.spans:
                roundtrip.tracer.ingest(response.spans)
            roundtrip.end()
        if len(response.orders) != len(graphs):
            raise DecodeWorkerError(
                f"worker returned {len(response.orders)} orders for "
                f"{len(graphs)} graphs"
            )
        return response.orders, response.log_probs

    def decode_orders(
        self, graphs: Sequence[ComputationalGraph]
    ) -> List[List[str]]:
        """Worker-side counterpart of ``RespectScheduler.decode_orders``."""
        graphs = list(graphs)
        if not graphs:
            return []
        orders, _ = self._decode_remote(graphs)
        return orders

    # -- scheduler interface -------------------------------------------
    def schedule(
        self, graph: ComputationalGraph, num_stages: int
    ) -> ScheduleResult:
        """Bit-identical to ``inner.schedule`` with a worker-side decode."""
        if num_stages < 1:
            raise SchedulingError("num_stages must be at least 1")
        inner = self._inner
        parent = current_span()
        with Timer() as timer:
            orders, log_probs = self._decode_remote([graph])
            pp_span = (
                parent.child("postprocess") if parent is not None else NOOP_SPAN
            )
            with pp_span:
                raw = pack_sequence(
                    graph,
                    orders[0],
                    num_stages,
                    budget_slack=inner.budget_slack,  # type: ignore[attr-defined]
                )
                violations = len(raw.dependency_violations())
                schedule = postprocess_schedule(
                    raw,
                    enforce_siblings=inner.enforce_siblings,  # type: ignore[attr-defined]
                )
        return ScheduleResult(
            schedule=schedule,
            solve_time=timer.elapsed,
            method=self.method_name,
            status="inference",
            extras={
                "repaired_violations": violations,
                "log_prob": log_probs[0],
                "worker_decode": True,
            },
        )

    def schedule_batch(
        self,
        graphs: Sequence[ComputationalGraph],
        num_stages: Union[int, Sequence[int]],
    ) -> List[ScheduleResult]:
        """Bit-identical to ``inner.schedule_batch`` (one worker decode)."""
        graphs = list(graphs)
        stage_counts = normalize_stage_counts(num_stages, len(graphs))
        if not graphs:
            return []
        inner = self._inner
        parent = current_span()
        with Timer() as timer:
            orders, log_probs = self._decode_remote(graphs)
            pp_span = (
                parent.child("postprocess", batch_size=len(graphs))
                if parent is not None
                else NOOP_SPAN
            )
            with pp_span:
                schedules = []
                violations = []
                for b, graph in enumerate(graphs):
                    raw = pack_sequence(
                        graph,
                        orders[b],
                        stage_counts[b],
                        budget_slack=inner.budget_slack,  # type: ignore[attr-defined]
                    )
                    violations.append(len(raw.dependency_violations()))
                    schedules.append(
                        postprocess_schedule(
                            raw,
                            enforce_siblings=inner.enforce_siblings,  # type: ignore[attr-defined]
                        )
                    )
        amortized = timer.elapsed / len(graphs)
        return [
            ScheduleResult(
                schedule=schedules[b],
                solve_time=amortized,
                method=self.method_name,
                status="inference",
                extras={
                    "repaired_violations": violations[b],
                    "log_prob": log_probs[b],
                    "batch_size": len(graphs),
                    "batch_seconds": timer.elapsed,
                    "worker_decode": True,
                },
            )
            for b in range(len(graphs))
        ]


__all__ = [
    "DecodePoolStats",
    "DecodeWorkerPool",
    "WorkerDecodeScheduler",
    "supports_worker_decode",
    "unwrap_scheduler",
]
