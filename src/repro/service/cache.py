"""Thread-safe LRU cache of solved schedules.

The cache stores *graph-independent* payloads: a stage assignment plus
the scheduler's reported method/objective/status.  A
:class:`CachedSchedule` deliberately does not hold the
:class:`~repro.graphs.dag.ComputationalGraph` it was solved on — the
service rebinds the assignment to whichever (content-identical) graph
object the requester supplied, so cached entries never pin large graphs
in memory and a served :class:`~repro.scheduling.schedule.Schedule`
always references the caller's own graph.

Keys are built by :meth:`ScheduleCache.make_key` from the graph's exact
content fingerprint, the requested stage count, and the scheduler's
options fingerprint (packer options + policy weights for RESPECT); see
:func:`repro.graphs.fingerprint.graph_fingerprint` for why that key is
exactly as discriminating as the scheduler itself.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ServiceError

#: Cache key: (graph fingerprint, num_stages, scheduler options key).
CacheKey = Tuple[str, int, str]


@dataclass(frozen=True)
class CachedSchedule:
    """Graph-independent payload of one solved schedule."""

    assignment: Mapping[str, int]
    num_stages: int
    method: str
    objective: float
    status: str
    solve_time: float
    #: Who produced this schedule: the scheduler options fingerprint and
    #: (when the decode ran in a worker pool) the published weights
    #: epoch.  Carried into the persistent tier so a store directory can
    #: be audited entry by entry; ``None`` for entries that predate the
    #: provenance field.
    provenance: Optional[Mapping[str, object]] = None


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of cache counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    #: Entries dropped by :meth:`ScheduleCache.invalidate_options`
    #: (counted separately from capacity evictions).
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ScheduleCache:
    """Bounded LRU mapping from :data:`CacheKey` to :class:`CachedSchedule`.

    All operations are safe under concurrent access; a hit refreshes the
    entry's recency, insertion beyond ``capacity`` evicts the least
    recently used entry.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CachedSchedule]" = OrderedDict()
        #: Secondary index options_key -> keys cached under it, kept in
        #: lockstep with ``_entries`` so ``invalidate_options`` touches
        #: only the stale keys (O(stale)) instead of scanning the whole
        #: cache under the lock on every hot-swap.
        self._by_options: Dict[str, set] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    @staticmethod
    def make_key(fingerprint: str, num_stages: int, options_key: str) -> CacheKey:
        """Canonical cache key for one (graph, stage count, scheduler)."""
        return (str(fingerprint), int(num_stages), str(options_key))

    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[CachedSchedule]:
        """Return the cached payload for ``key`` (refreshing recency)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: CacheKey, value: CachedSchedule) -> None:
        """Insert/refresh ``key``, evicting LRU entries beyond capacity."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            self._by_options.setdefault(key[2], set()).add(key)
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._drop_from_options_index(evicted)
                self._evictions += 1

    def _drop_from_options_index(self, key: CacheKey) -> None:
        # Caller holds self._lock.
        keys = self._by_options.get(key[2])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_options[key[2]]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._by_options.clear()

    def invalidate_options(self, options_key: str) -> int:
        """Evict every entry keyed under ``options_key``; returns count.

        Schedules depend on the scheduler's options fingerprint, so when
        a scheduler configuration is retired — most prominently when a
        hot-swap replaces the policy behind a
        :class:`~repro.service.SchedulingService` — all entries solved
        under the old fingerprint become unreachable garbage.  This drops
        them eagerly via the secondary ``options_key -> keys`` index, so
        the time under the lock is O(stale entries), not O(cache size) —
        a hot-swap on a full, busy cache evicts only what it retires.
        LRU order of the surviving entries is untouched, and hit/miss
        counters are preserved.
        """
        options_key = str(options_key)
        with self._lock:
            stale = self._by_options.pop(options_key, None)
            if not stale:
                return 0
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
                invalidations=self._invalidations,
            )


__all__ = ["CacheKey", "CachedSchedule", "CacheStats", "ScheduleCache"]
