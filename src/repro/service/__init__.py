"""High-throughput scheduling service (fingerprint cache + micro-batching).

The serving layer toward the ROADMAP's production north star: an LRU
:class:`ScheduleCache` keyed by exact graph content fingerprints, and a
:class:`SchedulingService` that accepts concurrent ``submit`` requests,
coalesces identical in-flight ones, aggregates the rest into
micro-batches for the scheduler's vectorized ``schedule_batch``, and
returns futures whose schedules are bit-identical to direct
``scheduler.schedule`` calls.
"""

from repro.service.cache import (
    CachedSchedule,
    CacheKey,
    CacheStats,
    ScheduleCache,
)
from repro.service.service import (
    SchedulingService,
    ServiceStats,
    scheduler_options_key,
)

__all__ = [
    "CachedSchedule",
    "CacheKey",
    "CacheStats",
    "ScheduleCache",
    "SchedulingService",
    "ServiceStats",
    "scheduler_options_key",
]
