"""High-throughput scheduling service (fingerprint cache + micro-batching).

The serving layer toward the ROADMAP's production north star: an LRU
:class:`ScheduleCache` keyed by exact graph content fingerprints, and a
:class:`SchedulingService` that accepts concurrent ``submit`` requests,
coalesces identical in-flight ones, aggregates the rest into
micro-batches for the scheduler's vectorized ``schedule_batch``, and
returns futures whose schedules are bit-identical to direct
``scheduler.schedule`` calls.

:class:`ShardedSchedulingService` scales that horizontally: requests
are consistent-hashed by graph fingerprint across N independent
service shards (private cache, micro-batcher and hot-swap slot each),
behind bounded admission (block / shed / degrade backpressure policies)
and an async ``asubmit`` facade.

Both tiers optionally run the policy decode **outside the GIL**: with
``decode_workers=N`` the greedy pointer-network decode is dispatched to
a :class:`DecodeWorkerPool` of worker processes over the versioned
:mod:`repro.service.wire` format, with bit-identical schedules,
hot-swap propagation via weights epochs, and crash-respawned workers.

And both tiers optionally **persist**: ``store_dir=`` stacks the LRU
over a crash-safe, content-addressed :class:`DiskScheduleStore`
(append-only segments of wire frames, provenance-tagged entries,
durable tombstone invalidation) via :class:`TieredScheduleStore`, so a
rebooted service serves previously solved graphs without re-solving —
see :mod:`repro.service.store`.
"""

from repro.service.cache import (
    CachedSchedule,
    CacheKey,
    CacheStats,
    ScheduleCache,
)
from repro.service.store import (
    CompactionStats,
    DiskScheduleStore,
    DiskStoreStats,
    StoreNamespace,
    TieredScheduleStore,
    TieredStoreStats,
)
from repro.service.service import (
    SchedulingService,
    ServiceStats,
    scheduler_options_key,
)
from repro.service.sharded import (
    ShardedSchedulingService,
    ShardedServiceStats,
    build_hash_ring,
    shard_for_fingerprint,
)
from repro.service.workers import (
    DecodePoolStats,
    DecodeWorkerPool,
    WorkerDecodeScheduler,
    supports_worker_decode,
    unwrap_scheduler,
)

__all__ = [
    "CachedSchedule",
    "CacheKey",
    "CacheStats",
    "CompactionStats",
    "DecodePoolStats",
    "DecodeWorkerPool",
    "DiskScheduleStore",
    "DiskStoreStats",
    "ScheduleCache",
    "SchedulingService",
    "ServiceStats",
    "ShardedSchedulingService",
    "ShardedServiceStats",
    "StoreNamespace",
    "TieredScheduleStore",
    "TieredStoreStats",
    "WorkerDecodeScheduler",
    "build_hash_ring",
    "scheduler_options_key",
    "shard_for_fingerprint",
    "supports_worker_decode",
    "unwrap_scheduler",
]
