"""Compact, versioned wire format for cross-process scheduling payloads.

Decode worker processes (:mod:`repro.service.workers`) must exchange
graphs, decode requests/responses and schedules with the serving parent
without pickling live object graphs — pickle ties the payload to the
sender's class layout, hides cost, and cannot be validated.  This module
defines a small framed format instead:

``RSPW | version | kind | payload length | crc32 | payload``

The header is fixed-width (:data:`WIRE_VERSION` bumps on layout
changes; every version in :data:`SUPPORTED_WIRE_VERSIONS` still
decodes, so a store segment or in-flight frame written by an older
build keeps working); the payload is canonical UTF-8 JSON with *tagged* value
encoding, so every attr type the graph fingerprint distinguishes
(``int`` vs ``float`` vs ``bool``, ``tuple`` vs ``list``, ``set`` /
``frozenset``, ``dict``, ``bytes``) survives a round trip exactly.
Every way a payload can be bad — truncation, foreign bytes, a version
from a different build, checksum corruption, an unsupported value type —
raises :class:`~repro.errors.WireFormatError` naming the violation.

Graph payloads are **content-addressed**: the sender's
:func:`~repro.graphs.fingerprint.graph_fingerprint` is embedded, and
:func:`decode_graph` recomputes the fingerprint of the reconstruction
and refuses to return a graph whose identity drifted.  Reconstruction
replays edges in an order that reproduces both each node's parent
insertion order (what the fingerprint and the embedding consume) *and*
each node's child insertion order (what Kahn's-algorithm tie-breaking
consumes), so the decoded graph is schedule-equivalent to the original,
not merely fingerprint-equal.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field as dataclasses_field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WireFormatError
from repro.graphs.dag import ComputationalGraph, OpNode
from repro.graphs.fingerprint import graph_fingerprint
from repro.scheduling.schedule import Schedule

#: First bytes of every frame; rejects foreign byte streams immediately.
MAGIC = b"RSPW"

#: Version written on every new frame.  Bump on layout changes so
#: mixed-version processes fail loudly instead of mis-decoding each
#: other's payloads.  v2 added optional trace-context fields to decode
#: requests (``trace``) and responses (``spans``) for cross-process
#: span propagation.
WIRE_VERSION = 2

#: Versions this build can still *decode*.  v1 frames carry no trace
#: fields; decoding them yields ``trace=None`` / ``spans=[]``.
SUPPORTED_WIRE_VERSIONS = (1, 2)

#: Frame kinds.  A frame decoded as the wrong kind is an error, not a
#: guess — the kind byte is how a worker distinguishes a request from a
#: stray response.
KIND_GRAPH = 1
KIND_DECODE_REQUEST = 2
KIND_DECODE_RESPONSE = 3
KIND_SCHEDULE = 4
KIND_OPTIONS = 5
KIND_STORE_ENTRY = 6
KIND_STORE_TOMBSTONE = 7

_KIND_NAMES = {
    KIND_GRAPH: "graph",
    KIND_DECODE_REQUEST: "decode-request",
    KIND_DECODE_RESPONSE: "decode-response",
    KIND_SCHEDULE: "schedule",
    KIND_OPTIONS: "options",
    KIND_STORE_ENTRY: "store-entry",
    KIND_STORE_TOMBSTONE: "store-tombstone",
}

#: magic, version, kind, payload length, crc32 of the payload.
_HEADER = struct.Struct("<4sBBQI")

#: Fixed byte length of every frame header (segment scanners need it to
#: know how much to read before the payload length is known).
HEADER_SIZE = _HEADER.size


def frame_info(header: bytes) -> Tuple[int, int]:
    """Parse a frame header prefix into ``(kind, total_frame_length)``.

    Validates the magic and version (so a scanner positioned on foreign
    or wrong-build bytes fails here instead of mis-reading a length) but
    *not* the payload checksum — the payload usually has not been read
    yet.  ``total_frame_length`` includes the header itself.
    """
    if isinstance(header, (bytearray, memoryview)):
        header = bytes(header)
    if len(header) < HEADER_SIZE:
        raise WireFormatError(
            f"truncated frame: {len(header)} bytes, header alone needs "
            f"{HEADER_SIZE}"
        )
    magic, version, kind, length, _ = _HEADER.unpack_from(header)
    if magic != MAGIC:
        raise WireFormatError(
            f"bad magic {magic!r}: not a RESPECT wire payload"
        )
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise WireFormatError(
            f"unsupported wire version {version}; this build speaks "
            f"versions {SUPPORTED_WIRE_VERSIONS}"
        )
    return kind, HEADER_SIZE + length


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def _frame(kind: int, payload_obj: object) -> bytes:
    payload = json.dumps(payload_obj, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(
        MAGIC, WIRE_VERSION, kind, len(payload), zlib.crc32(payload)
    ) + payload


def _unframe(data: object, expected_kind: int) -> dict:
    if isinstance(data, (bytearray, memoryview)):
        data = bytes(data)
    if not isinstance(data, bytes):
        raise WireFormatError(
            f"wire payload must be bytes, got {type(data).__name__}"
        )
    if len(data) < _HEADER.size:
        raise WireFormatError(
            f"truncated frame: {len(data)} bytes, header alone needs "
            f"{_HEADER.size}"
        )
    magic, version, kind, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise WireFormatError(
            f"bad magic {magic!r}: not a RESPECT wire payload"
        )
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise WireFormatError(
            f"unsupported wire version {version}; this build speaks "
            f"versions {SUPPORTED_WIRE_VERSIONS}"
        )
    payload = data[_HEADER.size :]
    if len(payload) != length:
        raise WireFormatError(
            f"truncated payload: header declares {length} bytes, frame "
            f"carries {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise WireFormatError("payload checksum mismatch: frame is corrupt")
    if kind != expected_kind:
        raise WireFormatError(
            f"frame holds a {_KIND_NAMES.get(kind, f'kind-{kind}')} payload, "
            f"expected {_KIND_NAMES[expected_kind]}"
        )
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireFormatError(
            f"payload passed its checksum but is not valid JSON: {exc}"
        ) from exc
    if not isinstance(obj, dict):
        raise WireFormatError("payload root must be a JSON object")
    return obj


# ----------------------------------------------------------------------
# tagged value codec
# ----------------------------------------------------------------------
def _encode_value(value: object, where: str) -> object:
    """JSON-encodable form of an attr value, preserving its exact type.

    Scalars pass through (JSON keeps ``int``/``float``/``bool``/``str``/
    ``None`` distinct, and ``repr``-based float serialization round-trips
    exactly); containers the fingerprint distinguishes are wrapped in a
    ``{"__t": ...}`` tag.  Sets serialize in the fingerprint's canonical
    element order so equal sets produce equal bytes.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_encode_value(v, where) for v in value]
    if isinstance(value, tuple):
        return {"__t": "tuple", "v": [_encode_value(v, where) for v in value]}
    if isinstance(value, (set, frozenset)):
        from repro.graphs.fingerprint import _canonical_value

        ordered = sorted(value, key=_canonical_value)
        return {
            "__t": type(value).__name__,
            "v": [_encode_value(v, where) for v in ordered],
        }
    if isinstance(value, dict):
        return {
            "__t": "dict",
            "v": [
                [_encode_value(k, where), _encode_value(v, where)]
                for k, v in value.items()
            ],
        }
    if isinstance(value, (bytes, bytearray)):
        return {"__t": "bytes", "v": bytes(value).hex()}
    raise WireFormatError(
        f"unsupported value type {type(value).__name__} at {where}; the "
        f"wire format carries JSON scalars, list/tuple/set/frozenset/dict "
        f"containers and bytes"
    )


def _decode_value(value: object, where: str) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_decode_value(v, where) for v in value]
    if isinstance(value, dict):
        tag = value.get("__t")
        inner = value.get("v")
        if tag == "tuple" and isinstance(inner, list):
            return tuple(_decode_value(v, where) for v in inner)
        if tag == "set" and isinstance(inner, list):
            return set(_decode_value(v, where) for v in inner)
        if tag == "frozenset" and isinstance(inner, list):
            return frozenset(_decode_value(v, where) for v in inner)
        if tag == "dict" and isinstance(inner, list):
            out = {}
            for item in inner:
                if not isinstance(item, list) or len(item) != 2:
                    raise WireFormatError(
                        f"malformed dict entry at {where}: {item!r}"
                    )
                out[_decode_value(item[0], where)] = _decode_value(
                    item[1], where
                )
            return out
        if tag == "bytes" and isinstance(inner, str):
            try:
                return bytes.fromhex(inner)
            except ValueError as exc:
                raise WireFormatError(
                    f"malformed bytes value at {where}: {exc}"
                ) from exc
        raise WireFormatError(
            f"unknown value tag {tag!r} at {where}; payload may come from "
            f"a newer wire version"
        )
    raise WireFormatError(
        f"unexpected JSON value of type {type(value).__name__} at {where}"
    )


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------
def _edge_replay_sequence(graph: ComputationalGraph) -> List[Tuple[int, int]]:
    """An edge order whose replay reproduces both adjacency orderings.

    ``add_edge`` appends to the source's child list and the destination's
    parent list, so replaying edges in an order consistent with *both*
    per-node orderings reconstructs them exactly.  Such an order always
    exists for graphs built through the :class:`ComputationalGraph` API
    (the original insertion sequence is one); the two-pointer merge below
    finds one, or raises if handed adjacency lists no single sequence can
    produce.
    """
    index = graph.build_index()
    names = graph.node_names
    child_chain = {u: graph.children(u) for u in names}
    parent_chain = {v: graph.parents(v) for v in names}
    child_ptr = {u: 0 for u in names}
    parent_ptr = {v: 0 for v in names}
    sequence: List[Tuple[int, int]] = []
    total = graph.num_edges
    progress = True
    while len(sequence) < total and progress:
        progress = False
        for v in names:
            while parent_ptr[v] < len(parent_chain[v]):
                u = parent_chain[v][parent_ptr[v]]
                if child_chain[u][child_ptr[u]] != v:
                    break
                sequence.append((index[u], index[v]))
                child_ptr[u] += 1
                parent_ptr[v] += 1
                progress = True
    if len(sequence) < total:
        raise WireFormatError(
            f"graph {graph.name!r} has adjacency orderings no edge-insertion "
            f"sequence reproduces; it was not built through the "
            f"ComputationalGraph API"
        )
    return sequence


def _graph_to_payload(graph: ComputationalGraph) -> dict:
    nodes = []
    for node in graph.nodes:
        where = f"attr of node {node.name!r}"
        nodes.append(
            [
                node.name,
                node.op_type,
                node.param_bytes,
                node.output_bytes,
                node.macs,
                [
                    [_encode_value(k, where), _encode_value(v, where)]
                    for k, v in node.attrs.items()
                ],
            ]
        )
    return {
        "name": graph.name,
        "fingerprint": graph_fingerprint(graph),
        "nodes": nodes,
        "edges": [[u, v] for u, v in _edge_replay_sequence(graph)],
    }


def _graph_from_payload(payload: dict, verify_fingerprint: bool = True) -> ComputationalGraph:
    name = payload.get("name")
    nodes = payload.get("nodes")
    edges = payload.get("edges")
    if not isinstance(name, str) or not isinstance(nodes, list) or not isinstance(edges, list):
        raise WireFormatError("graph payload misses name/nodes/edges fields")
    graph = ComputationalGraph(name=name)
    order: List[str] = []
    for entry in nodes:
        if not isinstance(entry, list) or len(entry) != 6:
            raise WireFormatError(f"malformed graph node entry: {entry!r}")
        node_name, op_type, param_bytes, output_bytes, macs, attr_items = entry
        if not isinstance(attr_items, list):
            raise WireFormatError(
                f"malformed attrs for node {node_name!r}"
            )
        where = f"attr of node {node_name!r}"
        attrs = {}
        for item in attr_items:
            if not isinstance(item, list) or len(item) != 2:
                raise WireFormatError(f"malformed attr entry at {where}")
            attrs[_decode_value(item[0], where)] = _decode_value(item[1], where)
        try:
            # add_node (not add_op) so attr keys can never collide with
            # the constructor's parameter names.
            graph.add_node(
                OpNode(
                    name=node_name,
                    op_type=op_type,
                    param_bytes=param_bytes,
                    output_bytes=output_bytes,
                    macs=macs,
                    attrs=attrs,
                )
            )
        except Exception as exc:
            raise WireFormatError(
                f"graph payload holds an invalid node {node_name!r}: {exc}"
            ) from exc
        order.append(node_name)
    for entry in edges:
        if (
            not isinstance(entry, list)
            or len(entry) != 2
            or not all(isinstance(i, int) for i in entry)
            or not all(0 <= i < len(order) for i in entry)
        ):
            raise WireFormatError(f"malformed graph edge entry: {entry!r}")
        try:
            graph.add_edge(order[entry[0]], order[entry[1]])
        except Exception as exc:
            raise WireFormatError(
                f"graph payload holds an invalid edge {entry!r}: {exc}"
            ) from exc
    if verify_fingerprint:
        declared = payload.get("fingerprint")
        actual = graph_fingerprint(graph)
        if declared != actual:
            raise WireFormatError(
                f"graph fingerprint mismatch after decode: payload declares "
                f"{declared!r}, reconstruction hashes to {actual!r}"
            )
    return graph


def encode_graph(graph: ComputationalGraph) -> bytes:
    """Serialize ``graph`` (with its embedded content fingerprint)."""
    return _frame(KIND_GRAPH, _graph_to_payload(graph))


def decode_graph(data: bytes, verify_fingerprint: bool = True) -> ComputationalGraph:
    """Reconstruct a graph; verifies the embedded fingerprint by default."""
    return _graph_from_payload(
        _unframe(data, KIND_GRAPH), verify_fingerprint=verify_fingerprint
    )


# ----------------------------------------------------------------------
# scheduler options
# ----------------------------------------------------------------------
def encode_options(options: Dict[str, object]) -> bytes:
    """Serialize a scheduler-options mapping (tagged, order-preserving)."""
    if not isinstance(options, dict):
        raise WireFormatError(
            f"options must be a dict, got {type(options).__name__}"
        )
    return _frame(
        KIND_OPTIONS,
        {"options": _encode_value(options, "scheduler options")},
    )


def decode_options(data: bytes) -> Dict[str, object]:
    """Inverse of :func:`encode_options`."""
    payload = _unframe(data, KIND_OPTIONS)
    options = _decode_value(payload.get("options"), "scheduler options")
    if not isinstance(options, dict):
        raise WireFormatError("options payload root must decode to a dict")
    return options


# ----------------------------------------------------------------------
# decode requests / responses
# ----------------------------------------------------------------------
@dataclass
class DecodeRequest:
    """A batch of graphs for one worker-side greedy decode.

    ``options_key`` carries the sender's scheduler
    ``options_fingerprint()``; workers compare it against the fingerprint
    of the scheduler they rebuilt from the published weights epoch, so a
    request can never silently run under the wrong weights or options.
    """

    graphs: List[ComputationalGraph]
    options_key: Optional[str] = None
    #: Optional ``{"trace_id": str, "span_id": str}`` span context from
    #: the sender (wire v2).  Workers parent their decode sub-spans to
    #: ``span_id`` and ship them back in the response.
    trace: Optional[Dict[str, str]] = None

    @property
    def fingerprints(self) -> List[str]:
        return [graph_fingerprint(g) for g in self.graphs]


@dataclass
class DecodeResponse:
    """Decoded node orders (as node names) plus decode log-probabilities."""

    orders: List[List[str]]
    log_probs: List[float]
    #: Worker-side span records (wire v2); empty for v1 frames or when
    #: the request carried no trace context.
    spans: List[dict] = dataclasses_field(default_factory=list)


def _validate_trace_context(trace: object) -> Optional[Dict[str, str]]:
    if trace is None:
        return None
    if (
        not isinstance(trace, dict)
        or not isinstance(trace.get("trace_id"), str)
        or not isinstance(trace.get("span_id"), str)
        or not trace["trace_id"]
        or not trace["span_id"]
    ):
        raise WireFormatError(
            f"trace context must be {{'trace_id': str, 'span_id': str}}, "
            f"got {trace!r}"
        )
    return {"trace_id": trace["trace_id"], "span_id": trace["span_id"]}


def encode_decode_request(
    graphs: Sequence[ComputationalGraph],
    options_key: Optional[str] = None,
    trace: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize a decode batch; each graph carries its fingerprint."""
    graphs = list(graphs)
    if not graphs:
        raise WireFormatError("a decode request must carry at least one graph")
    payload = {
        "options_key": options_key,
        "graphs": [_graph_to_payload(g) for g in graphs],
    }
    trace = _validate_trace_context(trace)
    if trace is not None:
        payload["trace"] = trace
    return _frame(KIND_DECODE_REQUEST, payload)


def decode_decode_request(data: bytes) -> DecodeRequest:
    """Inverse of :func:`encode_decode_request` (fingerprints verified)."""
    payload = _unframe(data, KIND_DECODE_REQUEST)
    entries = payload.get("graphs")
    if not isinstance(entries, list) or not entries:
        raise WireFormatError("decode request carries no graphs")
    options_key = payload.get("options_key")
    if options_key is not None and not isinstance(options_key, str):
        raise WireFormatError("decode request options_key must be a string")
    trace = _validate_trace_context(payload.get("trace"))
    graphs = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise WireFormatError(f"malformed graph payload: {entry!r}")
        graphs.append(_graph_from_payload(entry))
    return DecodeRequest(graphs=graphs, options_key=options_key, trace=trace)


def encode_decode_response(
    orders: Sequence[Sequence[str]],
    log_probs: Sequence[float],
    spans: Optional[Sequence[dict]] = None,
) -> bytes:
    """Serialize decoded orders; one name list + log-prob per graph."""
    orders = [list(order) for order in orders]
    log_probs = [float(lp) for lp in log_probs]
    if len(orders) != len(log_probs):
        raise WireFormatError(
            f"decode response is inconsistent: {len(orders)} orders vs "
            f"{len(log_probs)} log-probs"
        )
    payload = {"orders": orders, "log_probs": log_probs}
    if spans:
        clean_spans = []
        for span in spans:
            if not isinstance(span, dict):
                raise WireFormatError(
                    f"decode response spans must be dicts, got {span!r}"
                )
            clean_spans.append(span)
        payload["spans"] = clean_spans
    return _frame(KIND_DECODE_RESPONSE, payload)


def decode_decode_response(data: bytes) -> DecodeResponse:
    """Inverse of :func:`encode_decode_response`."""
    payload = _unframe(data, KIND_DECODE_RESPONSE)
    orders = payload.get("orders")
    log_probs = payload.get("log_probs")
    raw_spans = payload.get("spans", [])
    if not isinstance(raw_spans, list) or not all(
        isinstance(s, dict) for s in raw_spans
    ):
        raise WireFormatError(
            f"decode response spans must be a list of objects, got "
            f"{raw_spans!r}"
        )
    if not isinstance(orders, list) or not isinstance(log_probs, list):
        raise WireFormatError("decode response misses orders/log_probs")
    if len(orders) != len(log_probs):
        raise WireFormatError(
            f"decode response is inconsistent: {len(orders)} orders vs "
            f"{len(log_probs)} log-probs"
        )
    clean_orders: List[List[str]] = []
    for order in orders:
        if not isinstance(order, list) or not all(
            isinstance(n, str) for n in order
        ):
            raise WireFormatError(f"malformed decode order: {order!r}")
        clean_orders.append(list(order))
    clean_probs: List[float] = []
    for lp in log_probs:
        if not isinstance(lp, (int, float)) or isinstance(lp, bool):
            raise WireFormatError(f"malformed log-probability: {lp!r}")
        clean_probs.append(float(lp))
    return DecodeResponse(
        orders=clean_orders, log_probs=clean_probs, spans=list(raw_spans)
    )


# ----------------------------------------------------------------------
# schedules
# ----------------------------------------------------------------------
@dataclass
class WireSchedule:
    """A schedule detached from its graph object.

    The wire carries stage indices in graph insertion order plus the
    graph's fingerprint; :meth:`bind` re-attaches the schedule to a live
    graph, refusing a graph whose fingerprint differs from the one the
    schedule was computed for.
    """

    graph_fingerprint: str
    num_stages: int
    stages: List[int]

    def bind(self, graph: ComputationalGraph) -> Schedule:
        actual = graph_fingerprint(graph)
        if actual != self.graph_fingerprint:
            raise WireFormatError(
                f"schedule was computed for graph {self.graph_fingerprint!r} "
                f"but is being bound to {actual!r}"
            )
        names = graph.node_names
        if len(names) != len(self.stages):
            raise WireFormatError(
                f"schedule carries {len(self.stages)} stage entries for a "
                f"{len(names)}-node graph"
            )
        return Schedule(
            graph, self.num_stages, dict(zip(names, self.stages))
        )


def encode_schedule(schedule: Schedule) -> bytes:
    """Serialize ``schedule`` keyed by its graph's content fingerprint."""
    return _frame(
        KIND_SCHEDULE,
        {
            "fingerprint": graph_fingerprint(schedule.graph),
            "num_stages": schedule.num_stages,
            "stages": [
                schedule.assignment[name]
                for name in schedule.graph.node_names
            ],
        },
    )


def decode_schedule(data: bytes) -> WireSchedule:
    """Inverse of :func:`encode_schedule`; bind with a live graph."""
    payload = _unframe(data, KIND_SCHEDULE)
    fingerprint = payload.get("fingerprint")
    num_stages = payload.get("num_stages")
    stages = payload.get("stages")
    if (
        not isinstance(fingerprint, str)
        or not isinstance(num_stages, int)
        or isinstance(num_stages, bool)
        or not isinstance(stages, list)
    ):
        raise WireFormatError(
            "schedule payload misses fingerprint/num_stages/stages"
        )
    if num_stages < 1:
        raise WireFormatError(f"schedule declares {num_stages} stages")
    clean: List[int] = []
    for stage in stages:
        if not isinstance(stage, int) or isinstance(stage, bool):
            raise WireFormatError(f"malformed stage index: {stage!r}")
        if not 0 <= stage < num_stages:
            raise WireFormatError(
                f"stage index {stage} outside [0, {num_stages})"
            )
        clean.append(stage)
    return WireSchedule(
        graph_fingerprint=fingerprint, num_stages=num_stages, stages=clean
    )


# ----------------------------------------------------------------------
# schedule-store entries / tombstones
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreEntryRecord:
    """One persisted schedule: its store key plus the cached payload.

    The on-disk twin of a :class:`~repro.service.cache.CachedSchedule`
    under its cache key, extended with the ``namespace`` that scopes it
    (per-shard / per-method isolation inside one store) and provenance
    (the scheduler ``options_fingerprint`` that produced it — redundant
    with the key on purpose, so a corrupted key can never alias a
    foreign payload — plus the decode-pool weights epoch when known).
    """

    namespace: str
    fingerprint: str
    num_stages: int
    options_key: str
    assignment: Dict[str, int]
    method: str
    objective: float
    status: str
    solve_time: float
    provenance: Optional[Dict[str, object]] = None


@dataclass(frozen=True)
class StoreTombstoneRecord:
    """A durable invalidation: kills all *earlier* entries it matches.

    Appended when a scheduler configuration is retired (most prominently
    by ``promote_challenger``): replaying a segment sequence applies
    entries and tombstones in append order, so entries written under
    ``options_key`` *before* the tombstone are dropped while entries a
    later scheduler generation re-publishes under the same key survive.
    """

    namespace: str
    options_key: str


def encode_store_entry(record: StoreEntryRecord) -> bytes:
    """Serialize one schedule-store entry frame."""
    assignment = dict(record.assignment)
    for node, stage in assignment.items():
        if not isinstance(node, str):
            raise WireFormatError(
                f"store entry assignment key {node!r} is not a node name"
            )
        if not isinstance(stage, int) or isinstance(stage, bool):
            raise WireFormatError(
                f"store entry assignment stage {stage!r} is not an int"
            )
    return _frame(
        KIND_STORE_ENTRY,
        {
            "namespace": record.namespace,
            "fingerprint": record.fingerprint,
            "num_stages": record.num_stages,
            "options_key": record.options_key,
            "assignment": [[k, v] for k, v in assignment.items()],
            "method": record.method,
            "objective": record.objective,
            "status": record.status,
            "solve_time": record.solve_time,
            "provenance": (
                None
                if record.provenance is None
                else _encode_value(dict(record.provenance), "store entry provenance")
            ),
        },
    )


def decode_store_entry(data: bytes) -> StoreEntryRecord:
    """Inverse of :func:`encode_store_entry`, fully validated."""
    payload = _unframe(data, KIND_STORE_ENTRY)
    namespace = payload.get("namespace")
    fingerprint = payload.get("fingerprint")
    num_stages = payload.get("num_stages")
    options_key = payload.get("options_key")
    assignment = payload.get("assignment")
    method = payload.get("method")
    objective = payload.get("objective")
    status = payload.get("status")
    solve_time = payload.get("solve_time")
    if (
        not isinstance(namespace, str)
        or not isinstance(fingerprint, str)
        or not isinstance(options_key, str)
        or not isinstance(num_stages, int)
        or isinstance(num_stages, bool)
        or not isinstance(assignment, list)
        or not isinstance(method, str)
        or not isinstance(status, str)
    ):
        raise WireFormatError(
            "store entry payload misses namespace/fingerprint/num_stages/"
            "options_key/assignment/method/status"
        )
    if num_stages < 1:
        raise WireFormatError(f"store entry declares {num_stages} stages")
    for value, name in ((objective, "objective"), (solve_time, "solve_time")):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise WireFormatError(f"store entry {name} {value!r} is not a number")
    clean: Dict[str, int] = {}
    for item in assignment:
        if (
            not isinstance(item, list)
            or len(item) != 2
            or not isinstance(item[0], str)
            or not isinstance(item[1], int)
            or isinstance(item[1], bool)
        ):
            raise WireFormatError(f"malformed store assignment entry: {item!r}")
        if not 0 <= item[1] < num_stages:
            raise WireFormatError(
                f"store assignment stage {item[1]} outside [0, {num_stages})"
            )
        clean[item[0]] = item[1]
    provenance = payload.get("provenance")
    if provenance is not None:
        provenance = _decode_value(provenance, "store entry provenance")
        if not isinstance(provenance, dict):
            raise WireFormatError("store entry provenance must decode to a dict")
    return StoreEntryRecord(
        namespace=namespace,
        fingerprint=fingerprint,
        num_stages=num_stages,
        options_key=options_key,
        assignment=clean,
        method=method,
        objective=float(objective),
        status=status,
        solve_time=float(solve_time),
        provenance=provenance,
    )


def encode_store_tombstone(record: StoreTombstoneRecord) -> bytes:
    """Serialize one durable-invalidation tombstone frame."""
    return _frame(
        KIND_STORE_TOMBSTONE,
        {"namespace": record.namespace, "options_key": record.options_key},
    )


def decode_store_tombstone(data: bytes) -> StoreTombstoneRecord:
    """Inverse of :func:`encode_store_tombstone`."""
    payload = _unframe(data, KIND_STORE_TOMBSTONE)
    namespace = payload.get("namespace")
    options_key = payload.get("options_key")
    if not isinstance(namespace, str) or not isinstance(options_key, str):
        raise WireFormatError(
            "store tombstone payload misses namespace/options_key"
        )
    return StoreTombstoneRecord(namespace=namespace, options_key=options_key)


__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "SUPPORTED_WIRE_VERSIONS",
    "HEADER_SIZE",
    "frame_info",
    "KIND_GRAPH",
    "KIND_DECODE_REQUEST",
    "KIND_DECODE_RESPONSE",
    "KIND_SCHEDULE",
    "KIND_OPTIONS",
    "KIND_STORE_ENTRY",
    "KIND_STORE_TOMBSTONE",
    "DecodeRequest",
    "DecodeResponse",
    "StoreEntryRecord",
    "StoreTombstoneRecord",
    "WireSchedule",
    "encode_graph",
    "decode_graph",
    "encode_options",
    "decode_options",
    "encode_decode_request",
    "decode_decode_request",
    "encode_decode_response",
    "decode_decode_response",
    "encode_schedule",
    "decode_schedule",
    "encode_store_entry",
    "decode_store_entry",
    "encode_store_tombstone",
    "decode_store_tombstone",
]
