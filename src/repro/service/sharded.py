"""Sharded serving tier: consistent-hash fan-out over service shards.

:class:`ShardedSchedulingService` scales the single-worker
:class:`~repro.service.SchedulingService` horizontally: requests are
routed by **graph fingerprint** over a consistent-hash ring onto ``N``
fully independent shards, each keeping its own
:class:`~repro.service.ScheduleCache`, micro-batching worker and
hot-swap slot.  Three properties fall out of fingerprint routing:

* **cache affinity** — content-identical graphs always land on the same
  shard, so shard-private caches lose nothing versus one shared cache
  (and drop its lock contention);
* **coalescing still works** — a thundering herd on one graph converges
  on one shard and shares one solve there;
* **elastic resharding** — the ring uses virtual nodes, so growing the
  tier from ``N`` to ``N+1`` shards remaps only ``~1/(N+1)`` of the
  fingerprint space (the rest keep their warm caches).

**Bounded admission.**  Each shard carries at most
``max_queue_depth`` of *solver backlog* (unsolved unique requests —
waiters coalescing onto one in-flight solve share its single slot, and
requests answerable from the cache bypass the gate entirely); beyond
that the selected ``admission`` policy applies:

``"block"``
    The submitting thread waits until the shard drains below the limit —
    classic backpressure, load is never lost (the default).
``"shed"``
    :class:`~repro.errors.ServiceOverloadError` is raised immediately —
    for callers with their own retry/hedging logic.
``"degrade"``
    The request is answered *inline* by a cheap fallback scheduler (a
    deterministic heuristic by default) instead of queueing — latency
    stays bounded at the cost of schedule quality; degraded results are
    marked ``extras["degraded"] = True``.

**Hot swap.**  :meth:`swap_scheduler` installs a new policy shard by
shard.  The atomicity contract is **per shard**: every request is served
bit-identically by exactly one policy version (each shard's worker
snapshots its scheduler per batch — see
:meth:`SchedulingService.swap_scheduler`), and any request submitted
after ``swap_scheduler`` returns is served by the new version on every
shard.  During the swap itself, different shards may briefly serve
different versions — the tier never serves a *torn* schedule, but global
cross-shard cutover is eventual (ordered shard-by-shard), which is
exactly the rolling-update semantics of a real fleet.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import (
    Callable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ServiceError, ServiceOverloadError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.fingerprint import graph_fingerprint
from repro.obs.metrics import HistogramSnapshot
from repro.obs.telemetry import Telemetry
from repro.obs.trace import current_span
from repro.scheduling.schedule import ScheduleResult
from repro.scheduling.sequence import normalize_stage_counts
from repro.service.cache import ScheduleCache
from repro.service.store import DiskScheduleStore
from repro.service.service import (
    SchedulingService,
    ServiceStats,
    ServingFacade,
    notify_serve_listeners,
)
# Still exported for the report layers; tier latency percentiles now
# come from merged per-shard registry histograms (bucket counts compose
# exactly; percentiles of percentiles would not).
from repro.utils.stats import percentile

_ADMISSION_POLICIES = ("block", "shed", "degrade")

#: Ring points per shard.  64 virtual nodes keep the shard-load spread
#: within a few percent of uniform while the ring stays tiny (N*64
#: 8-byte points) and O(log) to search.
_VIRTUAL_NODES = 64


def _ring_hash(data: str) -> int:
    """Stable 64-bit position on the ring (first 8 SHA-256 bytes)."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def build_hash_ring(
    num_shards: int, virtual_nodes: int = _VIRTUAL_NODES
) -> Tuple[List[int], List[int]]:
    """Consistent-hash ring: sorted point positions + owning shard ids.

    Deterministic in ``num_shards``/``virtual_nodes`` alone — every
    process (and every test) derives the identical ring, so routing is
    reproducible across runs and machines.
    """
    if num_shards < 1:
        raise ServiceError(f"num_shards must be >= 1, got {num_shards}")
    if virtual_nodes < 1:
        raise ServiceError(
            f"virtual_nodes must be >= 1, got {virtual_nodes}"
        )
    points = sorted(
        (_ring_hash(f"shard:{shard}:vnode:{vnode}"), shard)
        for shard in range(num_shards)
        for vnode in range(virtual_nodes)
    )
    return [p for p, _ in points], [s for _, s in points]


def shard_for_fingerprint(
    fingerprint: str, ring: Tuple[List[int], List[int]]
) -> int:
    """Owning shard of a graph fingerprint on a :func:`build_hash_ring`."""
    positions, shards = ring
    index = bisect.bisect_right(positions, _ring_hash(fingerprint))
    return shards[index % len(shards)]


@dataclass(frozen=True)
class ShardedServiceStats:
    """Aggregate + per-shard counters of a :class:`ShardedSchedulingService`.

    The aggregate counter fields mirror :class:`ServiceStats` (summed
    over shards, plus the degraded serves handled at the front tier), so
    stats consumers written against the single-shard service — e.g.
    :func:`repro.flow.compare.serve_methods`'s fold — read the sharded
    tier unchanged.  Latency percentiles come from *merging* the
    per-shard registry histograms bucket-by-bucket (exact counts
    compose; percentiles of percentiles would be wrong).  Like every
    stats dataclass in this package, this is a view over the shared
    metrics registry — the same instruments the Prometheus/JSON
    exposition scrapes.
    """

    num_shards: int
    requests: int
    cache_hits: int
    coalesced: int
    batches: int
    scheduled_graphs: int
    mean_batch_size: float
    hit_rate: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p99_s: float
    swaps: int
    listener_errors: int
    #: Admission-control outcomes at the front tier.
    admission: str
    max_queue_depth: int
    #: Submissions that had to wait for a saturated shard ("block").
    blocked: int
    #: Submissions rejected with ServiceOverloadError ("shed").
    shed: int
    #: Submissions answered inline by the degrade ladder or fallback
    #: scheduler ("degrade").
    degraded: int
    per_shard: Tuple[ServiceStats, ...]


class ShardedSchedulingService(ServingFacade):
    """N independent :class:`SchedulingService` shards behind one door.

    Parameters
    ----------
    scheduler:
        One scheduler instance installed on *every* shard.  Its
        ``schedule`` / ``schedule_batch`` must tolerate concurrent calls
        from ``num_shards`` worker threads — true for
        :class:`~repro.rl.respect.RespectScheduler` (the decode is
        functional over read-only weights) and for every deterministic
        baseline heuristic.  For stateful schedulers pass
        ``scheduler_factory`` instead.
    scheduler_factory:
        Zero-argument callable producing one scheduler per shard
        (mutually exclusive with ``scheduler``).  Factories must produce
        equivalently-configured schedulers: bit-identical outputs and
        equal options fingerprints — otherwise the shard a request
        hashes to would change its answer.
    num_shards:
        Shard count (>= 1).
    max_queue_depth:
        Per-shard solver-backlog bound (unsolved unique requests)
        before the admission policy applies; requests coalescing onto
        an in-flight solve share its one slot.
    admission:
        ``"block"`` (default) / ``"shed"`` / ``"degrade"`` — see the
        module docstring.
    fallback_scheduler:
        Heuristic used by ``"degrade"``; defaults to the deterministic
        :class:`~repro.scheduling.heuristics.ListScheduler`.  Ignored
        when ``portfolio`` is supplied.
    portfolio:
        Optional :class:`~repro.portfolio.degrade.DegradeLadder` (any
        object with ``serve(graph, num_stages) -> (result, rung)``).
        When present, degraded requests walk the pressure-ranked
        policy → heuristic → cached-nearest → floor ladder instead of
        cliffing straight to ``fallback_scheduler``; the answering rung
        lands in ``extras["degrade_rung"]`` and in the front tier's
        ``respect_degrade_rung_total{rung=...}`` counters.  If the
        object also exposes ``observe(graph, num_stages, result)``, it
        is registered as a tier-wide serve listener so full-quality
        serves warm its cached-nearest index.
    caches:
        Optional pre-built per-shard caches (``len == num_shards``) so a
        front tier can persist warm caches across service generations;
        by default each shard builds a private cache of
        ``cache_capacity`` entries.  Mutually exclusive with
        ``store``/``store_dir``.
    store:
        A shared :class:`~repro.service.store.DiskScheduleStore`: each
        shard mounts a tiered store (private LRU over its own
        ``shard-<i>`` namespace of this store).  The ring depends only
        on ``num_shards``/``virtual_nodes``, so namespaces preserve
        consistent-hash affinity across restarts — a reopened tier finds
        each fingerprint's entries in exactly the namespace its shard
        reads.  Stays caller-owned (not closed by :meth:`close`).
    store_dir:
        Convenience: open (or create) one persistent store at this
        directory, owned by the tier and closed with it.  A tier
        rebooted over the same directory serves previously solved
        graphs without re-solving them.
    store_namespace:
        Optional prefix for the per-shard namespaces (the shard ``i``
        namespace is ``"<prefix>/shard-<i>"``, or ``"shard-<i>"`` when
        empty) — how multiple tiers (e.g. one per served method) share
        one store directory without key collisions.
    cache_capacity / max_batch_size / batch_window_s:
        Forwarded to every shard's :class:`SchedulingService`.
    decode_workers:
        When positive, one shared
        :class:`~repro.service.workers.DecodeWorkerPool` of that many
        *processes* serves the policy decodes of **every** shard —
        shard worker threads stop competing for the GIL on the numpy
        decode, which is what lets shard throughput actually scale with
        shard count on a multi-core host.  Weights are published once
        per (swap) generation, not once per shard.  ``0`` (default)
        keeps the in-process decode.
    decode_pool:
        A pre-built shared pool instead of owning one (mutually
        exclusive with positive ``decode_workers``); never closed by
        :meth:`close`.
    telemetry:
        A :class:`~repro.obs.Telemetry` facade shared by the whole tier:
        each shard gets a ``telemetry.child(shard="<i>")`` derivation so
        its registry series carry per-shard labels, while the front tier
        records admission outcomes and degraded serves under
        ``tier="front"``.  One registry scrape covers everything.
        Defaults to a private metrics-only facade.
    """

    def __init__(
        self,
        scheduler: Optional[object] = None,
        *,
        scheduler_factory: Optional[Callable[[], object]] = None,
        num_shards: int = 2,
        max_queue_depth: int = 64,
        admission: str = "block",
        fallback_scheduler: Optional[object] = None,
        portfolio: Optional[object] = None,
        caches: Optional[Sequence[ScheduleCache]] = None,
        cache_capacity: int = 1024,
        max_batch_size: int = 32,
        batch_window_s: float = 0.002,
        virtual_nodes: int = _VIRTUAL_NODES,
        decode_workers: int = 0,
        decode_pool: Optional[object] = None,
        store: Optional[DiskScheduleStore] = None,
        store_dir: Optional[str] = None,
        store_namespace: str = "",
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if (scheduler is None) == (scheduler_factory is None):
            raise ServiceError(
                "supply exactly one of scheduler= or scheduler_factory="
            )
        if num_shards < 1:
            raise ServiceError(f"num_shards must be >= 1, got {num_shards}")
        if max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        if admission not in _ADMISSION_POLICIES:
            raise ServiceError(
                f"unknown admission policy {admission!r}; choose from "
                f"{_ADMISSION_POLICIES}"
            )
        if caches is not None and len(caches) != num_shards:
            raise ServiceError(
                f"caches must have one entry per shard: got {len(caches)} "
                f"for {num_shards} shards"
            )
        store_sources = [
            name
            for name, value in (
                ("caches", caches),
                ("store", store),
                ("store_dir", store_dir),
            )
            if value is not None
        ]
        if len(store_sources) > 1:
            raise ServiceError(
                f"supply at most one of caches=/store=/store_dir=, got "
                f"{'+'.join(store_sources)}"
            )
        self._owned_store: Optional[DiskScheduleStore] = None
        if store_dir is not None:
            store = DiskScheduleStore(store_dir)
            self._owned_store = store
        elif store is not None and not isinstance(store, DiskScheduleStore):
            raise ServiceError(
                "sharded store= must be a DiskScheduleStore (per-shard "
                "namespaces are carved out of it)"
            )
        self._disk_store = store
        self._store_namespace = str(store_namespace)
        if admission == "degrade":
            if fallback_scheduler is None:
                from repro.scheduling.heuristics import ListScheduler

                fallback_scheduler = ListScheduler()
            if not callable(getattr(fallback_scheduler, "schedule", None)):
                raise ServiceError(
                    "fallback_scheduler must expose schedule(graph, "
                    "num_stages)"
                )
        # Duck-typed so repro.service never imports repro.portfolio:
        # anything with the DegradeLadder serve() contract works.
        if portfolio is not None and not callable(
            getattr(portfolio, "serve", None)
        ):
            raise ServiceError(
                "portfolio must expose serve(graph, num_stages) -> "
                "(result, rung), e.g. repro.portfolio.DegradeLadder"
            )
        if decode_workers < 0:
            raise ServiceError(
                f"decode_workers must be >= 0, got {decode_workers}"
            )
        if decode_workers > 0 and decode_pool is not None:
            raise ServiceError(
                "pass either decode_workers=N (tier owns a pool) or "
                "decode_pool= (shared), not both"
            )
        self._owns_decode_pool = False
        if decode_workers > 0:
            from repro.service.workers import DecodeWorkerPool

            decode_pool = DecodeWorkerPool(decode_workers)
            self._owns_decode_pool = True
        self._decode_pool = decode_pool
        self.num_shards = num_shards
        self.max_queue_depth = max_queue_depth
        self.admission = admission
        self.fallback_scheduler = fallback_scheduler
        self.portfolio = portfolio
        self._ring = build_hash_ring(num_shards, virtual_nodes)
        # One weights epoch serves every shard: the first wrap publishes,
        # the rest reuse it (factories must produce equivalent
        # schedulers, and the decode workers *check* the fingerprint).
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        epoch: Optional[int] = None
        shards = []
        for i in range(num_shards):
            incoming = (
                scheduler if scheduler is not None else scheduler_factory()
            )
            incoming, epoch = self._wrap_shard_scheduler(incoming, epoch)
            shards.append(
                SchedulingService(
                    incoming,
                    cache=caches[i] if caches is not None else None,
                    cache_capacity=cache_capacity,
                    max_batch_size=max_batch_size,
                    batch_window_s=batch_window_s,
                    store=self._disk_store,
                    store_namespace=self.shard_namespace(i),
                    # Per-shard label: one shared registry, per-shard
                    # series — shard stats stay views over their own
                    # instruments, a single scrape covers the tier.
                    telemetry=self.telemetry.child(shard=str(i)),
                )
            )
        self.shards: Tuple[SchedulingService, ...] = tuple(shards)
        # -- front-tier state (guarded by self._cond's lock) -----------
        self._cond = threading.Condition()
        #: Per-shard admission-gate accounting, owned entirely by the
        #: front tier so the gate is race-free: ``_gate`` counts
        #: admitted requests that created new (still-unresolved) solver
        #: work; ``_reserved`` counts admissions whose shard submit has
        #: not returned yet.  Gate value = _gate + _reserved, so racing
        #: submitters cannot jointly overshoot ``max_queue_depth``, and
        #: a reservation converts to a gate slot (or is released for
        #: hits/coalesces) under one lock acquisition — never counted
        #: twice.
        self._gate = [0] * num_shards
        self._reserved = [0] * num_shards
        self._listeners: List[Callable] = []
        self._closed = False
        # -- front-tier registry instruments ----------------------------
        # Admission outcomes and degraded serves happen *before* (or
        # instead of) any shard, so they are counted exactly once, here,
        # under the ``tier="front"`` label — never again inside a shard
        # (the double-counting audit in the tests pins this).
        front = self.telemetry.child(tier="front")
        self._m_blocked = front.counter(
            "respect_admission_outcomes_total",
            help="Admission-control outcomes at the sharded front tier",
            outcome="blocked",
        )
        self._m_shed = front.counter(
            "respect_admission_outcomes_total", outcome="shed"
        )
        self._m_degraded = front.counter(
            "respect_admission_outcomes_total", outcome="degraded"
        )
        # Degraded serves never reach a shard; counting them under the
        # front tier keeps "sum of respect_requests_total across series"
        # equal to the tier's total served requests.
        self._m_front_requests = front.counter("respect_requests_total")
        self._m_tier_swaps = front.counter(
            "respect_tier_swaps_total",
            help="Tier-level rolling hot-swaps (each touches every shard)",
        )
        self._m_listener_errors = front.counter(
            "respect_listener_errors_total"
        )
        # Which ladder rung answered each degraded request.  The first
        # four names mirror repro.portfolio.degrade.LADDER_RUNGS (not
        # imported here — the service layer stays portfolio-free);
        # "fallback" is the legacy single-scheduler degrade path used
        # when no ladder is configured.
        self._front_telemetry = front
        self._m_degrade_rungs = {
            rung: front.counter(
                "respect_degrade_rung_total",
                help="Degraded serves by the ladder rung that answered",
                rung=rung,
            )
            for rung in (
                "policy",
                "heuristic",
                "cached_nearest",
                "floor",
                "fallback",
            )
        }
        if self.portfolio is not None and callable(
            getattr(self.portfolio, "observe", None)
        ):
            # Full-quality serves (shard-side) warm the ladder's
            # cached-nearest index; the ladder itself skips results
            # flagged degraded, so degrade-path notifications are safe.
            self.add_serve_listener(self.portfolio.observe)

    # ------------------------------------------------------------------
    # decode workers
    # ------------------------------------------------------------------
    def _wrap_shard_scheduler(
        self, incoming: object, epoch: Optional[int]
    ) -> Tuple[object, Optional[int]]:
        """Route one shard's decode through the shared pool.

        Publishes the weights at most once per scheduler generation:
        ``epoch=None`` publishes and returns the fresh epoch, a concrete
        ``epoch`` is reused (the per-shard wrappers of one generation
        all tag their requests with it, so a rolling swap retargets the
        pool exactly once).  Unsupported schedulers pass through — those
        shards decode in-process, exactly as without a pool.
        """
        if self._decode_pool is None:
            return incoming, epoch
        from repro.service.workers import (
            WorkerDecodeScheduler,
            supports_worker_decode,
        )

        if not supports_worker_decode(incoming):
            return incoming, epoch
        if epoch is None:
            epoch = self._decode_pool.publish_scheduler(incoming)
        return (
            WorkerDecodeScheduler(incoming, self._decode_pool, epoch),
            epoch,
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def shard_namespace(self, shard_id: int) -> str:
        """Persistent-store namespace of shard ``shard_id``.

        Stable across restarts for a fixed tier shape, which is what
        makes a reopened store warm: the ring (and thus each
        fingerprint's shard) depends only on ``num_shards`` and
        ``virtual_nodes``, and this mapping depends only on the shard id
        and the configured prefix.
        """
        prefix = self._store_namespace
        return f"{prefix}/shard-{shard_id}" if prefix else f"shard-{shard_id}"

    @property
    def schedule_store(self) -> Optional[DiskScheduleStore]:
        """The persistent store behind the tier (None when memory-only)."""
        return self._disk_store

    def snapshot(self):
        """Persist the shared store's index (raises when memory-only)."""
        if self._disk_store is None:
            raise ServiceError(
                "this tier has no persistent schedule store to snapshot "
                "(construct it with store= or store_dir=)"
            )
        return self._disk_store.snapshot()

    def restore(self, limit: Optional[int] = None) -> int:
        """Warm every shard's memory tier from the shared store.

        ``limit`` bounds the preload *per shard* (default: each shard's
        LRU capacity).  Returns the total number of preloaded entries;
        ``0`` when the tier is memory-only.
        """
        return sum(shard.restore(limit) for shard in self.shards)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_index(self, graph_or_fingerprint: Union[ComputationalGraph, str]) -> int:
        """Which shard a graph (or its fingerprint) routes to."""
        fingerprint = (
            graph_or_fingerprint
            if isinstance(graph_or_fingerprint, str)
            else graph_fingerprint(graph_or_fingerprint)
        )
        return shard_for_fingerprint(fingerprint, self._ring)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self,
        graph: ComputationalGraph,
        num_stages: int,
        deadline_ms: Optional[float] = None,
    ) -> "Future[ScheduleResult]":
        """Route one request to its shard, applying admission control.

        Returns a future exactly like :meth:`SchedulingService.submit`
        (cache hits resolve before returning).  Degraded answers come
        back as already-resolved futures carrying
        ``extras["degraded"] = True`` plus ``extras["degrade_rung"]``
        naming which ladder rung answered.  ``deadline_ms`` is forwarded
        to the shard (see :meth:`SchedulingService.submit`); degraded
        requests are answered inline from the ladder, which trivially
        satisfies any deadline.
        """
        (stages,) = normalize_stage_counts(num_stages, 1)
        # Fingerprint once, outside any lock: it both picks the shard
        # and is forwarded so the shard does not recompute it.
        fingerprint = graph_fingerprint(graph)
        shard_id = shard_for_fingerprint(fingerprint, self._ring)
        # Root (or join) the request trace before admission so the gate
        # wait shows up inside the span tree; the shard later *joins*
        # this span (via current_span) instead of rooting its own.
        span = None
        owns_span = False
        tracer = self.telemetry.tracer
        if tracer is not None:
            span = current_span()
            # Sampling is decided before the root span's attributes are
            # built, so unsampled requests pay one PRNG draw and nothing
            # else on the serve path.
            if span is None and tracer.sample():
                span = (
                    self.telemetry.root_span(
                        "request",
                        fingerprint=fingerprint[:12],
                        num_stages=stages,
                        shard=shard_id,
                    )
                    or None
                )
                owns_span = span is not None
        admission_start = time.time()
        degrade = False
        waited = False
        bypassed = False
        try:
            with self._cond:
                if self._closed:
                    raise ServiceError("service is closed")
                # The gate measures admitted *solver backlog* (unresolved
                # unique solves, `_gate`, plus in-transit admissions,
                # `_reserved`) — not attached waiters: any number of
                # requests coalescing onto one in-flight solve occupy
                # exactly one slot, so a thundering herd on one graph can
                # never starve requests for other graphs out of the depth
                # budget.  Both counters live under this lock, so racing
                # submitters cannot jointly overshoot ``max_queue_depth``.
                while (
                    self._gate[shard_id] + self._reserved[shard_id]
                ) >= self.max_queue_depth:
                    # A request already answerable without new solver work
                    # (cached, or coalescable onto an in-flight solve) is
                    # waved past the gate without even a reservation:
                    # serving it adds no backlog, and admission exists to
                    # bound solver work, not O(1) lookups.  The probe races
                    # with eviction; a lost race admits at most one extra
                    # solve (it is still gate-counted below once real),
                    # which the depth bound absorbs on the next request.
                    if self.shards[shard_id].has_cached(fingerprint, stages):
                        bypassed = True
                        break
                    if self.admission == "shed":
                        self._m_shed.inc()
                        raise ServiceOverloadError(
                            f"shard {shard_id} is at its queue depth limit "
                            f"({self.max_queue_depth}); request shed"
                        )
                    if self.admission == "degrade":
                        self._m_degraded.inc()
                        degrade = True
                        break
                    waited = True
                    self._cond.wait()
                    if self._closed:
                        raise ServiceError("service is closed")
                if waited:
                    self._m_blocked.inc()
                if not degrade and not bypassed:
                    self._reserved[shard_id] += 1
        except BaseException as exc:
            if span is not None:
                tracer.record_span(
                    "admission",
                    admission_start,
                    time.time(),
                    span.trace_id,
                    span.span_id,
                    attrs={
                        "outcome": (
                            "shed"
                            if isinstance(exc, ServiceOverloadError)
                            else "error"
                        ),
                        "shard": shard_id,
                    },
                )
                if owns_span:
                    span.end(status="error")
            raise
        if span is not None:
            tracer.record_span(
                "admission",
                admission_start,
                time.time(),
                span.trace_id,
                span.span_id,
                attrs={
                    "outcome": (
                        "degraded"
                        if degrade
                        else "bypassed"
                        if bypassed
                        else "blocked"
                        if waited
                        else "admitted"
                    ),
                    "shard": shard_id,
                },
            )
        if degrade:
            return self._serve_degraded(graph, stages, span, owns_span)
        route_start = time.time()
        try:
            if span is not None:
                # Activating the tier span makes the shard *join* it —
                # its lookup/solve/publish records parent here instead
                # of rooting a second trace for the same request.
                with span.activate():
                    future = self.shards[shard_id].submit(
                        graph,
                        stages,
                        fingerprint=fingerprint,
                        deadline_ms=deadline_ms,
                    )
            else:
                future = self.shards[shard_id].submit(
                    graph, stages, fingerprint=fingerprint, deadline_ms=deadline_ms
                )
        except BaseException:
            if span is not None and owns_span:
                span.end(status="error")
            if not bypassed:
                with self._cond:
                    self._reserved[shard_id] -= 1
                    if self.admission == "block":
                        self._cond.notify_all()
            raise
        if span is not None:
            tracer.record_span(
                "route",
                route_start,
                time.time(),
                span.trace_id,
                span.span_id,
                attrs={"shard": shard_id},
            )
            if owns_span:
                # The root closes when the request resolves (hit futures
                # are already done; the callback then fires inline).
                future.add_done_callback(lambda _f, _s=span: _s.end())
        # Did this admission create new solver work?  A cache hit is
        # already resolved; a coalesced request carries the shard's
        # marker.  Only new solves occupy a gate slot (released by the
        # done callback) — hits and coalesces release their reservation
        # without ever being double-counted, because the conversion
        # happens under the same lock the gate reads.
        new_solve = not future.done() and not getattr(
            future, "_respect_coalesced", False
        )
        with self._cond:
            if not bypassed:
                self._reserved[shard_id] -= 1
            if new_solve:
                self._gate[shard_id] += 1
            elif self.admission == "block" and not bypassed:
                self._cond.notify_all()  # reservation freed capacity
        if new_solve:
            future.add_done_callback(
                lambda _f, shard_id=shard_id: self._gate_release(shard_id)
            )
        return future

    def _gate_release(self, shard_id: int) -> None:
        # One callback per unique solve (never per waiter, never for
        # cache hits), so the front-tier lock is off the hot serving
        # path; under "block" a release also wakes gated submitters.
        # Shards resolve futures outside their own lock, so this
        # acquisition cannot deadlock against shard internals.
        with self._cond:
            self._gate[shard_id] -= 1
            if self.admission == "block":
                self._cond.notify_all()

    def _serve_degraded(
        self,
        graph: ComputationalGraph,
        stages: int,
        span: Optional[object] = None,
        owns_span: bool = False,
    ) -> "Future[ScheduleResult]":
        """Answer inline from the degrade ladder (saturated shard).

        With a ``portfolio`` ladder the answer walks
        policy → heuristic → cached-nearest → floor and the winning rung
        is recorded in ``extras["degrade_rung"]`` plus the per-rung
        front-tier counter; without one the legacy ``fallback_scheduler``
        answers under the ``"fallback"`` rung label.
        """
        solve_start = time.time()
        if self.portfolio is not None:
            result, rung = self.portfolio.serve(graph, stages)
            served_by = str(result.method)
        else:
            result = self.fallback_scheduler.schedule(graph, stages)  # type: ignore[union-attr]
            rung = "fallback"
            result.extras.setdefault("degrade_rung", rung)
            served_by = str(
                getattr(
                    self.fallback_scheduler,
                    "method_name",
                    type(self.fallback_scheduler).__name__,
                )
            )
        # Degraded serves never reach a shard, so their request count
        # lands here (tier="front") — exactly once.
        self._m_front_requests.inc()
        rung_counter = self._m_degrade_rungs.get(rung)
        if rung_counter is None:
            # Custom ladders may invent rung names; get-or-create keeps
            # the per-rung accounting complete either way.
            rung_counter = self._front_telemetry.counter(
                "respect_degrade_rung_total", rung=rung
            )
            self._m_degrade_rungs[rung] = rung_counter
        rung_counter.inc()
        if span is not None:
            self.telemetry.tracer.record_span(
                "solve",
                solve_start,
                time.time(),
                span.trace_id,
                span.span_id,
                attrs={"degraded": True, "rung": rung},
            )
            if owns_span:
                span.end()
        result.extras["degraded"] = True
        result.extras.setdefault("cache_hit", False)
        result.extras.setdefault("service", served_by)
        future: "Future[ScheduleResult]" = Future()
        future.set_result(result)
        self._notify_degraded(graph, stages, result)
        return future

    def backlog(self) -> int:
        """Total solver backlog (unsolved unique requests) over all shards."""
        return sum(shard.backlog() for shard in self.shards)

    # ------------------------------------------------------------------
    # hot swap / observers / invalidation
    # ------------------------------------------------------------------
    @property
    def scheduler(self) -> object:
        """The currently installed policy (all shards run one version).

        Shards only ever change schedulers through
        :meth:`swap_scheduler`, which installs equivalently-configured
        instances everywhere, so shard 0's scheduler is representative —
        the property the online-adaptation loop reads the champion from.
        """
        return self.shards[0].scheduler

    def swap_scheduler(
        self,
        scheduler: Optional[object] = None,
        *,
        scheduler_factory: Optional[Callable[[], object]] = None,
    ) -> str:
        """Install a new scheduler on every shard, shard-atomically.

        Per-shard atomicity is inherited from
        :meth:`SchedulingService.swap_scheduler`: no request anywhere is
        ever served a torn mix of two policies, and every request
        submitted after this method returns is served by the new version.
        Cross-shard cutover is *rolling* (shard by shard, in index
        order); during it, shards may briefly serve different versions.

        Returns the retired options fingerprint (identical across
        shards, since shards always run equivalently-configured
        schedulers); evict stale entries with
        :meth:`invalidate_options`.
        """
        if (scheduler is None) == (scheduler_factory is None):
            raise ServiceError(
                "supply exactly one of scheduler= or scheduler_factory="
            )
        old_keys = []
        epoch: Optional[int] = None
        for shard in self.shards:
            incoming = (
                scheduler if scheduler is not None else scheduler_factory()
            )
            # One published weights epoch per swap, shared by all shards.
            incoming, epoch = self._wrap_shard_scheduler(incoming, epoch)
            old_keys.append(shard.swap_scheduler(incoming))
        self._m_tier_swaps.inc()
        return old_keys[0]

    def invalidate_options(self, options_key: str) -> int:
        """Evict ``options_key`` entries from every shard's cache."""
        return sum(
            shard.cache.invalidate_options(options_key)
            for shard in self.shards
        )

    def add_serve_listener(
        self, listener: Callable[[ComputationalGraph, int, ScheduleResult], None]
    ) -> None:
        """Register ``listener(graph, num_stages, result)`` on every shard.

        One registration observes the tier's entire traffic: each shard
        calls the listener for the requests it serves, and the front
        tier calls it for degraded (fallback-served) requests.  Error
        semantics match :meth:`SchedulingService.add_serve_listener`.
        """
        if not callable(listener):
            raise ServiceError("serve listener must be callable")
        for shard in self.shards:
            shard.add_serve_listener(listener)
        with self._cond:
            self._listeners.append(listener)

    def remove_serve_listener(self, listener: Callable) -> None:
        """Detach a listener tier-wide (missing ones no-op)."""
        for shard in self.shards:
            shard.remove_serve_listener(listener)
        with self._cond:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def _notify_degraded(
        self, graph: ComputationalGraph, num_stages: int, result: ScheduleResult
    ) -> None:
        # Degraded serves bypass the shards, so the front tier notifies
        # (and error-accounts) through the same shared implementation
        # the shards use — the two paths cannot diverge.
        with self._cond:
            listeners = list(self._listeners)
        notify_serve_listeners(
            listeners, graph, num_stages, result, self._record_listener_error
        )

    def _record_listener_error(self) -> bool:
        # Serialized under the tier lock so exactly one caller observes
        # the transition to 1 (and logs the one warning).
        with self._cond:
            self._m_listener_errors.inc()
            return self._m_listener_errors.value == 1

    # ------------------------------------------------------------------
    # stats / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ShardedServiceStats:
        """Aggregate counters over all shards plus admission outcomes."""
        per_shard = tuple(shard.stats() for shard in self.shards)
        # Exact tier-wide latency distribution: per-shard histograms
        # share one bucket layout, so their counts merge losslessly
        # (unlike pooling per-shard percentiles, which has no exact
        # composition).
        merged = HistogramSnapshot.merged(
            [shard.latency_snapshot() for shard in self.shards]
        )
        blocked = self._m_blocked.value
        shed = self._m_shed.value
        degraded = self._m_degraded.value
        swaps = self._m_tier_swaps.value
        front_listener_errors = self._m_listener_errors.value
        requests = sum(s.requests for s in per_shard) + degraded
        hits = sum(s.cache_hits for s in per_shard)
        batches = sum(s.batches for s in per_shard)
        scheduled = sum(s.scheduled_graphs for s in per_shard)
        return ShardedServiceStats(
            num_shards=self.num_shards,
            requests=requests,
            cache_hits=hits,
            coalesced=sum(s.coalesced for s in per_shard),
            batches=batches,
            scheduled_graphs=scheduled,
            mean_batch_size=scheduled / batches if batches else 0.0,
            hit_rate=hits / requests if requests else 0.0,
            latency_mean_s=merged.mean if merged.count else 0.0,
            latency_p50_s=merged.percentile(50) if merged.count else 0.0,
            latency_p99_s=merged.percentile(99) if merged.count else 0.0,
            swaps=swaps,
            listener_errors=(
                sum(s.listener_errors for s in per_shard)
                + front_listener_errors
            ),
            admission=self.admission,
            max_queue_depth=self.max_queue_depth,
            blocked=blocked,
            shed=shed,
            degraded=degraded,
            per_shard=per_shard,
        )

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Close every shard; fail all still-pending futures; wake blockers.

        Idempotent.  ``timeout`` is one shared drain deadline for the
        whole tier (not per shard).  Submitters blocked on admission are
        woken and raise :class:`ServiceError`; per-shard close semantics
        (drain, then fail the remainder) are documented on
        :meth:`SchedulingService.close`.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        # One shared drain budget for the whole tier: ``timeout`` is a
        # deadline, not a per-shard allowance (N stuck shards must not
        # stretch close() to N x timeout).
        deadline = None if timeout is None else time.monotonic() + timeout
        for shard in self.shards:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            shard.close(timeout=remaining)
        # The shared decode pool drains under the *same* deadline — one
        # budget for the whole tier, never timeout x (shards + workers).
        # Pool-side waiters still pending at the cutoff fail with the
        # same ServiceError("service closed") the shards use.
        if self._owns_decode_pool and self._decode_pool is not None:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            self._decode_pool.close(timeout=remaining)
        # The owned persistent store closes last, after every shard has
        # stopped writing (its close snapshots the index); a store
        # passed in via store= stays caller-owned and open.
        if self._owned_store is not None:
            self._owned_store.close()


__all__ = [
    "ShardedSchedulingService",
    "ShardedServiceStats",
    "build_hash_ring",
    "shard_for_fingerprint",
]
