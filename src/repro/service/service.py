"""Concurrent scheduling service: fingerprint cache + micro-batching.

:class:`SchedulingService` turns any scheduler with a
``schedule(graph, num_stages)`` method into a high-throughput request
server.  Three mechanisms amortize the per-request cost:

1. **Fingerprint cache** — requests are keyed by
   ``(graph_fingerprint, num_stages, scheduler options fingerprint)``;
   a previously solved graph is answered from an LRU
   :class:`~repro.service.cache.ScheduleCache` without touching the
   scheduler at all.
2. **In-flight coalescing** — concurrent identical requests (a thundering
   herd on a cache miss) share one solve: later submitters attach to the
   pending request instead of enqueuing a duplicate.
3. **Micro-batching** — distinct pending requests are aggregated by a
   worker thread (up to ``max_batch_size``, waiting at most
   ``batch_window_s`` after the first) and routed through the
   scheduler's vectorized ``schedule_batch`` when it has one (the
   RESPECT batched decode engine); schedulers without a batched path
   fall back to a sequential loop on the worker.

Served schedules are *bit-identical* to direct ``scheduler.schedule``
calls: the batched decode is equivalence-tested against the sequential
path, and cache keys are exactly as discriminating as the scheduler
(see :mod:`repro.graphs.fingerprint`).  Every result's schedule is bound
to the requesting caller's own graph object even when it was solved for
(or cached from) a content-identical twin.

The scheduler behind a running service can be replaced without downtime
via :meth:`SchedulingService.swap_scheduler` (the online-adaptation
champion/challenger promotion path): the worker snapshots the scheduler
per batch, so every request — before, during or after the swap — is
served bit-identically by exactly one policy version, and post-swap
requests key onto the new options fingerprint (evict the old entries
with :meth:`~repro.service.ScheduleCache.invalidate_options`).
Observers registered through
:meth:`SchedulingService.add_serve_listener` see every resolved request
— the hook the online experience recorder uses.
"""

from __future__ import annotations

import asyncio
import hashlib
import logging
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ServiceError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.fingerprint import graph_fingerprint
from repro.obs.telemetry import Telemetry
from repro.obs.trace import current_span
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.scheduling.sequence import normalize_stage_counts
from repro.service.cache import (
    CachedSchedule,
    CacheKey,
    CacheStats,
    ScheduleCache,
)
from repro.service.store import DEFAULT_NAMESPACE, mount_store
# Still exported from this module: the shared percentile helper is the
# pinned single implementation behind the *report* layers; service-side
# latency percentiles now come from the registry histogram.
from repro.utils.stats import percentile

_LOGGER = logging.getLogger(__name__)

#: How long an idle worker thread lingers before retiring.  Retirement
#: drops the thread's reference to the service, so an abandoned
#: (unclosed) service becomes garbage-collectable instead of leaking a
#: polling thread; the next submit restarts the worker transparently.
_WORKER_IDLE_S = 1.0

_SCALARS = (bool, int, float, str, bytes, type(None))


def notify_serve_listeners(
    listeners: Sequence[Callable],
    graph: "ComputationalGraph",
    num_stages: int,
    result: "ScheduleResult",
    record_error: Callable[[], bool],
) -> None:
    """Call every serve listener with uniform error semantics.

    The one implementation behind both the per-shard serve path and the
    sharded tier's degraded path: a faulty observer must never fail the
    request it is observing — but it must not fail *silently* either
    (the drift/adaptation loop would quietly lose its observations).
    Every swallowed exception is reported to ``record_error()`` (which
    counts it under the owner's lock and returns True for the first
    occurrence), and exactly the first one is logged with its traceback.
    """
    for listener in listeners:
        try:
            listener(graph, num_stages, result)
        except Exception:
            if record_error():
                _LOGGER.exception(
                    "serve listener %r raised; the exception is "
                    "swallowed (the request was still served) and "
                    "counted in the service's listener_errors stat — "
                    "further listener failures are counted but not "
                    "logged",
                    listener,
                )


def _option_value_key(name: str, value: object) -> str:
    """One attribute's contribution to the fallback options key.

    Scalars and shallow scalar containers are keyed by value.  Anything
    else (a profiler object, a numpy array, ...) is keyed by *identity*:
    conservative in the safe direction — two scheduler instances holding
    distinct objects never alias a cache entry, at worst they miss one
    they could have shared.
    """
    if isinstance(value, _SCALARS):
        return f"{name}={value!r}"
    if isinstance(value, (list, tuple, set, frozenset)) and all(
        isinstance(v, _SCALARS) for v in value
    ):
        items = sorted(map(repr, value)) if isinstance(
            value, (set, frozenset)
        ) else [repr(v) for v in value]
        return f"{name}={type(value).__name__}[{','.join(items)}]"
    if isinstance(value, dict) and all(
        isinstance(k, _SCALARS) and isinstance(v, _SCALARS)
        for k, v in value.items()
    ):
        items = sorted(f"{k!r}:{v!r}" for k, v in value.items())
        return f"{name}=dict{{{','.join(items)}}}"
    return f"{name}={type(value).__qualname__}@{id(value)}"


def scheduler_options_key(scheduler: object) -> str:
    """Stable digest of everything (besides the graph) that shapes output.

    Schedulers exposing ``options_fingerprint()`` (e.g.
    :class:`~repro.rl.respect.RespectScheduler`, whose digest covers the
    packer options, embedding config *and policy weights*) supply their
    own.  The fallback hashes the scheduler's class identity plus every
    public attribute: scalar-valued options by value, object-valued ones
    by identity — so differently-configured instances of the same
    baseline never share cache entries (instances holding equivalent but
    distinct option *objects* also don't; define ``options_fingerprint``
    on the scheduler to key those by content).
    """
    custom = getattr(scheduler, "options_fingerprint", None)
    if callable(custom):
        return str(custom())
    parts = [
        type(scheduler).__module__,
        type(scheduler).__qualname__,
        str(getattr(scheduler, "method_name", "")),
    ]
    attrs = getattr(scheduler, "__dict__", None) or {}
    for name in sorted(attrs):
        if name.startswith("_"):  # internal state (locks, counters, ...)
            continue
        parts.append(_option_value_key(name, attrs[name]))
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time service counters and latency summary.

    A *view* over the service's metrics-registry instruments (see
    :mod:`repro.obs`): every counter here reads the same instrument the
    Prometheus/JSON exposition scrapes, so the two can never disagree.
    ``mean_batch_size`` averages over scheduler batches actually solved;
    latency percentiles come from the registry's streaming latency
    histogram (submit -> result available, cache hits included).
    """

    requests: int
    cache_hits: int
    coalesced: int
    batches: int
    scheduled_graphs: int
    mean_batch_size: float
    hit_rate: float
    latency_mean_s: float
    latency_p50_s: float
    latency_p99_s: float
    cache: CacheStats
    #: Hot-swaps performed via :meth:`SchedulingService.swap_scheduler`.
    swaps: int = 0
    #: Serve-listener exceptions swallowed by :meth:`_notify` (the first
    #: occurrence is logged, every one is counted here so a broken
    #: observer — e.g. the online-adaptation recorder — can never fail
    #: *silently*).
    listener_errors: int = 0


class _PendingRequest:
    """One enqueued unique (fingerprint, stages, options) solve."""

    __slots__ = ("key", "graph", "num_stages", "waiters", "deadline_ms", "submit_time")

    def __init__(
        self,
        key: CacheKey,
        graph: ComputationalGraph,
        num_stages: int,
        deadline_ms: Optional[float] = None,
        submit_time: float = 0.0,
    ):
        self.key = key
        self.graph = graph
        self.num_stages = num_stages
        #: Wall-clock budget of the originating submit (None = no
        #: deadline).  Honored when the scheduler exposes
        #: ``schedule_with_deadline`` (e.g. the anytime portfolio);
        #: measured from ``submit_time`` so queueing eats budget.
        self.deadline_ms = deadline_ms
        self.submit_time = submit_time
        #: ``(future, graph, submit_time, span)`` per attached caller;
        #: ``span`` is the caller's sampled request span (or None) —
        #: the worker parents its solve/publish spans to it.
        self.waiters: List[Tuple[Future, ComputationalGraph, float, object]] = []


class ServingFacade:
    """Sync/async conveniences shared by every serving front-end.

    Subclasses provide the core ``submit(graph, num_stages) -> Future``
    and ``close(timeout)``; this mixin derives the blocking
    ``schedule``, the burst ``schedule_batch``, the asyncio ``asubmit``
    bridge, context management, and the narrow-except ``__del__`` from
    them — one implementation for the single service and the sharded
    tier (a fix to any of these must not have to land twice).
    """

    def schedule(
        self,
        graph: ComputationalGraph,
        num_stages: int,
        deadline_ms: Optional[float] = None,
    ) -> ScheduleResult:
        """Blocking single-request convenience (same result as direct)."""
        if deadline_ms is None:
            return self.submit(graph, num_stages).result()  # type: ignore[attr-defined]
        return self.submit(  # type: ignore[attr-defined]
            graph, num_stages, deadline_ms=deadline_ms
        ).result()

    def schedule_batch(
        self,
        graphs: Sequence[ComputationalGraph],
        num_stages: Union[int, Sequence[int]],
    ) -> List[ScheduleResult]:
        """Submit a whole burst and gather results in order.

        Duck-type compatible with
        :meth:`repro.rl.respect.RespectScheduler.schedule_batch`, which
        lets any serving facade drop into :func:`repro.flow.compare
        .schedule_many` and friends as a scheduler.  All requests enter
        the queue before the first gather, so workers naturally
        aggregate them into micro-batches.
        """
        graphs = list(graphs)
        stage_counts = normalize_stage_counts(num_stages, len(graphs))
        futures = [
            self.submit(graph, stages)  # type: ignore[attr-defined]
            for graph, stages in zip(graphs, stage_counts)
        ]
        return [future.result() for future in futures]

    async def asubmit(
        self, graph: ComputationalGraph, num_stages: int
    ) -> ScheduleResult:
        """Async facade over ``submit``.

        ``submit`` itself is dispatched through the event loop's default
        executor (it can block — e.g. behind the sharded tier's
        ``"block"`` admission policy — and must never stall the loop),
        and the returned future is bridged to an awaitable.  The result
        is the same bit-identical :class:`ScheduleResult` the sync path
        serves.
        """
        loop = asyncio.get_running_loop()
        future = await loop.run_in_executor(
            None, self.submit, graph, num_stages  # type: ignore[attr-defined]
        )
        return await asyncio.wrap_future(future)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()  # type: ignore[attr-defined]

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close(timeout=0.1)  # type: ignore[attr-defined]
        except (AttributeError, TypeError, RuntimeError, ImportError):
            # Expected interpreter-shutdown races only: when the GC
            # finalizes an abandoned service during teardown, module
            # globals may already be None (AttributeError/TypeError),
            # thread primitives unusable (RuntimeError), and imports
            # forbidden (ImportError).  Anything else is a real bug in
            # close() and must surface, not be masked by __del__.
            pass


class SchedulingService(ServingFacade):
    """Thread-safe scheduling front-end over one scheduler instance.

    Parameters
    ----------
    scheduler:
        Any object with ``schedule(graph, num_stages)``; a vectorized
        ``schedule_batch(graphs, stage_counts)`` is used when present.
    cache:
        A (possibly shared) :class:`ScheduleCache`; by default a private
        cache of ``cache_capacity`` entries is created.  Sharing is safe
        because keys embed the scheduler options fingerprint.
    store:
        A pre-built schedule store to mount instead of a bare cache: a
        :class:`~repro.service.store.DiskScheduleStore` (one namespace
        of it is stacked under a fresh LRU; the store stays
        caller-owned) or any cache-protocol object such as a
        :class:`~repro.service.store.TieredScheduleStore`.  Mutually
        exclusive with ``cache`` and ``store_dir``.
    store_dir:
        Convenience: open (or create) a persistent
        :class:`~repro.service.store.DiskScheduleStore` at this
        directory and stack the in-memory LRU over it.  The service owns
        the disk store and closes it in :meth:`close`; entries written
        by previous processes over the same directory are served without
        re-solving (warm start).
    store_namespace:
        Namespace inside the disk store for this service's entries
        (default ``"default"``); the knob the sharded tier uses to give
        each shard its own keyspace in one shared store.
    max_batch_size:
        Upper bound on requests aggregated into one scheduler batch.
    batch_window_s:
        How long the worker waits for additional requests after the
        first of a batch arrives.  ``0`` disables waiting (each batch is
        whatever is already queued).
    decode_workers:
        When positive, policy decodes run in a pool of that many worker
        *processes* (see :class:`repro.service.workers.DecodeWorkerPool`)
        instead of on the service's worker thread — GIL-free scaling for
        RESPECT-style schedulers, with bit-identical schedules.  ``0``
        (the default) keeps today's in-process decode.  Schedulers the
        pool cannot run (heuristic baselines) silently stay in-process.
    decode_pool:
        A pre-built (possibly shared) pool to use instead of owning one;
        mutually exclusive with a positive ``decode_workers``.  Shared
        pools are *not* closed by :meth:`close` — the owner closes them.
    telemetry:
        A :class:`~repro.obs.Telemetry` facade backing this service's
        counters, latency histogram and (when its tracer is set) the
        per-request span tree.  Defaults to a private metrics-only
        facade — stats views keep working, tracing costs nothing.  When
        several services share one facade, give each a distinguishing
        constant label via ``telemetry.child(...)`` (the sharded tier
        labels its shards ``shard="N"`` this way) so their registry
        series don't alias.

    Use as a context manager or call :meth:`close` to stop the worker;
    ``close`` drains already-accepted requests first.
    """

    def __init__(
        self,
        scheduler: object,
        cache: Optional[ScheduleCache] = None,
        cache_capacity: int = 1024,
        max_batch_size: int = 32,
        batch_window_s: float = 0.002,
        decode_workers: int = 0,
        decode_pool: Optional[object] = None,
        store: Optional[object] = None,
        store_dir: Optional[str] = None,
        store_namespace: str = DEFAULT_NAMESPACE,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not callable(getattr(scheduler, "schedule", None)):
            raise ServiceError(
                "scheduler must expose a schedule(graph, num_stages) method"
            )
        if max_batch_size < 1:
            raise ServiceError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if batch_window_s < 0:
            raise ServiceError(
                f"batch_window_s must be >= 0, got {batch_window_s}"
            )
        if decode_workers < 0:
            raise ServiceError(
                f"decode_workers must be >= 0, got {decode_workers}"
            )
        if decode_workers > 0 and decode_pool is not None:
            raise ServiceError(
                "pass either decode_workers=N (service owns a pool) or "
                "decode_pool= (shared), not both"
            )
        # Mount the store before owning any decode pool so an invalid
        # cache=/store=/store_dir= combination cannot leak worker
        # processes; an owned disk store is closed by close().
        self.cache, self._owned_store = mount_store(
            store=store,
            store_dir=store_dir,
            cache=cache,
            cache_capacity=cache_capacity,
            namespace=store_namespace,
        )
        self._owns_decode_pool = False
        if decode_workers > 0:
            from repro.service.workers import DecodeWorkerPool

            decode_pool = DecodeWorkerPool(decode_workers)
            self._owns_decode_pool = True
        self._decode_pool = decode_pool
        scheduler = self._wrap_scheduler(scheduler)
        self.scheduler = scheduler
        self.method_name = str(
            getattr(scheduler, "method_name", type(scheduler).__name__)
        )
        self.max_batch_size = max_batch_size
        self.batch_window_s = batch_window_s
        self._options_key = scheduler_options_key(scheduler)
        self._cond = threading.Condition()
        self._queue: Deque[_PendingRequest] = deque()
        self._inflight: Dict[CacheKey, _PendingRequest] = {}
        self._closed = False
        self._worker: Optional[threading.Thread] = None
        self._listeners: List[Callable] = []
        # -- registry-backed counters (the single bookkeeping; stats()
        # and the exposition both read these same instruments) ----------
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        tel = self.telemetry
        self._m_requests = tel.counter(
            "respect_requests_total", help="Requests accepted by submit()"
        )
        self._m_cache_hits = tel.counter(
            "respect_cache_hits_total",
            help="Requests answered from the cache/store tier",
        )
        self._m_coalesced = tel.counter(
            "respect_coalesced_total",
            help="Requests that attached to an in-flight identical solve",
        )
        self._m_batches = tel.counter(
            "respect_batches_total", help="Scheduler batches solved"
        )
        self._m_scheduled = tel.counter(
            "respect_scheduled_graphs_total",
            help="Unique graphs solved by the scheduler",
        )
        self._m_swaps = tel.counter(
            "respect_swaps_total", help="Scheduler hot-swaps"
        )
        self._m_listener_errors = tel.counter(
            "respect_listener_errors_total",
            help="Serve-listener exceptions swallowed (first is logged)",
        )
        self._m_tier_lookups = {
            tier: tel.counter(
                "respect_tier_lookups_total",
                help="Cache/store lookups by answering tier",
                tier=tier,
            )
            for tier in ("memory", "disk", "miss")
        }
        self._m_latency = tel.histogram(
            "respect_request_latency_seconds",
            help="Per-request service latency (submit -> result)",
        )
        self._m_deadline = {
            outcome: tel.counter(
                "respect_deadline_outcomes_total",
                help="Deadline-carrying requests by hit/miss at resolve",
                outcome=outcome,
            )
            for outcome in ("hit", "miss")
        }

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self,
        graph: ComputationalGraph,
        num_stages: int,
        fingerprint: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> "Future[ScheduleResult]":
        """Accept one request; returns a future resolving to its result.

        Cache hits resolve the future before ``submit`` returns; misses
        are queued for the micro-batching worker (identical in-flight
        requests are coalesced onto one solve).

        ``fingerprint`` lets a front tier that already fingerprinted the
        graph (the sharded router hashes it to pick a shard) skip the
        recompute; it must equal ``graph_fingerprint(graph)``.

        ``deadline_ms`` is a per-request wall-clock budget, honored when
        the mounted scheduler exposes ``schedule_with_deadline`` (e.g.
        :class:`~repro.portfolio.anytime.AnytimePortfolio`): the worker
        solves such requests individually with whatever budget remains
        after queueing, and anytime (incomplete) answers are served but
        *not* published to the cache/store tier — a 1 ms best-effort
        schedule must never become the fingerprint's canonical entry.
        Deadline hit/miss outcomes are counted under
        ``respect_deadline_outcomes_total``.  Schedulers without the
        hook ignore the budget.  Cache hits trivially satisfy any
        deadline; requests that coalesce onto an in-flight solve share
        its pacing.

        Futures of requests that coalesced onto an in-flight solve carry
        ``future._respect_coalesced = True`` — the marker admission and
        reuse-accounting layers use to tell "created new solver work"
        from "shared an existing solve".
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ServiceError(f"deadline_ms must be positive, got {deadline_ms}")
        (stages,) = normalize_stage_counts(num_stages, 1)
        start = time.perf_counter()
        # Fingerprinting is the expensive part of the key; stay unlocked.
        if fingerprint is None:
            fingerprint = graph_fingerprint(graph)
        # Join the caller's active request span (the sharded tier roots
        # one before routing here), or root a fresh sampled trace when
        # this service is the entry point.  ``span`` stays None when
        # tracing is off or the trace is unsampled.
        span = None
        owns_span = False
        tracer = self.telemetry.tracer
        if tracer is not None:
            span = current_span()
            # Sampling is decided before the root span's attributes are
            # built, so unsampled requests pay one PRNG draw and nothing
            # else on the serve path.
            if span is None and tracer.sample():
                span = (
                    self.telemetry.root_span(
                        "request",
                        # Racy by design: across a concurrent hot swap
                        # the span may carry the old or new label, both
                        # truthful; the cache key reads under the lock.
                        method=self.method_name,  # repro: unlocked-ok
                        fingerprint=fingerprint[:12],
                        num_stages=stages,
                    )
                    or None
                )
                # This submit rooted the trace: end the span when the
                # request future resolves (on whichever thread that
                # happens); a span joined from an outer tier is ended
                # by that tier instead.
                owns_span = span is not None
        future: "Future[ScheduleResult]" = Future()
        lookup_start = time.time()
        with self._cond:
            if self._closed:
                raise ServiceError("service is closed")
            # The options key is read under the lock so a request
            # submitted after a hot-swap can never key onto (or coalesce
            # with) the previous scheduler's entries.
            key = ScheduleCache.make_key(fingerprint, stages, self._options_key)
            method_name = self.method_name
            self._m_requests.inc()
            # Check in-flight before the cache: the worker publishes to
            # the cache *before* retiring the in-flight entry, so under
            # this lock a key is always in at least one of the two once
            # first submitted — no duplicate-solve window.
            pending = self._inflight.get(key)
            if pending is not None:
                self._m_coalesced.inc()
                pending.waiters.append((future, graph, start, span))
                # Marker for admission layers: this request created no
                # new solver work (it shares the in-flight solve).
                future._respect_coalesced = True  # type: ignore[attr-defined]
                self._cond.notify_all()
                if span is not None:
                    span.add_event("coalesced")
                    if owns_span:
                        future.add_done_callback(
                            lambda _f, _s=span: _s.end()
                        )
                return future
            cached, tier = self._lookup(key)
            self._m_tier_lookups[tier].inc()
            if cached is None:
                pending = _PendingRequest(
                    key, graph, stages, deadline_ms=deadline_ms, submit_time=start
                )
                pending.waiters.append((future, graph, start, span))
                self._inflight[key] = pending
                self._queue.append(pending)
                self._ensure_worker_locked()
                self._cond.notify_all()
                if span is not None:
                    tracer.record_span(
                        "lookup", lookup_start, time.time(),
                        span.trace_id, span.span_id, attrs={"tier": tier},
                    )
                    if owns_span:
                        future.add_done_callback(
                            lambda _f, _s=span: _s.end()
                        )
                return future
            self._m_cache_hits.inc()
        if span is not None:
            tracer.record_span(
                "lookup", lookup_start, time.time(),
                span.trace_id, span.span_id, attrs={"tier": tier},
            )
        # Cache hit: rebind to the caller's graph outside the lock.
        result = self._bind(
            cached,
            graph,
            cache_hit=True,
            lookup_seconds=time.perf_counter() - start,
            method_name=method_name,
        )
        if deadline_ms is not None:
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            outcome = "hit" if elapsed_ms <= deadline_ms else "miss"
            self._m_deadline[outcome].inc()
        self._m_latency.observe(time.perf_counter() - start)
        self._notify(graph, stages, result)
        future.set_result(result)
        if owns_span:
            span.end()
        return future

    def _lookup(self, key: CacheKey):
        """Resolve ``key`` against the cache tier; returns (entry, tier).

        ``tier`` labels where the answer came from: ``"memory"`` /
        ``"disk"`` for a :class:`~repro.service.store
        .TieredScheduleStore` (which reports its own promotion path via
        ``lookup``), ``"memory"``/``"miss"`` for a bare LRU cache.
        """
        tiered = getattr(self.cache, "lookup", None)
        if callable(tiered):
            entry, tier = tiered(key)
            return entry, (tier or "miss")
        entry = self.cache.get(key)
        return entry, ("memory" if entry is not None else "miss")

    def backlog(self) -> int:
        """Unique solves currently queued or in flight on the worker."""
        with self._cond:
            return len(self._inflight)

    def has_cached(self, fingerprint: str, num_stages: int) -> bool:
        """Whether a request would be answered without new solver work.

        True when the ``(fingerprint, num_stages)`` pair — under the
        *current* options fingerprint — is already cached or in flight
        (an in-flight hit coalesces onto the pending solve; neither
        consumes a worker slot).  A non-mutating probe: no LRU refresh,
        no hit/miss counting.  The sharded tier's admission control uses
        it to wave such requests past a saturated shard's queue-depth
        gate.
        """
        with self._cond:
            if self._closed:
                return False
            key = ScheduleCache.make_key(
                fingerprint, num_stages, self._options_key
            )
            return key in self._inflight or key in self.cache

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    def _ensure_worker_locked(self) -> None:
        # Caller holds self._cond.
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._worker_loop,
                name="scheduling-service-worker",
                daemon=True,
            )
            self._worker.start()

    def _worker_loop(self) -> None:
        idle_deadline = time.perf_counter() + _WORKER_IDLE_S
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    remaining = idle_deadline - time.perf_counter()
                    if remaining <= 0:
                        # Idle long enough: retire (under the lock, so a
                        # concurrent submit either sees us alive or
                        # starts a fresh worker — never neither).
                        self._worker = None
                        return
                    self._cond.wait(timeout=remaining)
                if not self._queue:
                    if self._closed:
                        return
                    continue
                batch = [self._queue.popleft()]
                deadline = time.perf_counter() + self.batch_window_s
                while len(batch) < self.max_batch_size:
                    if self._queue:
                        batch.append(self._queue.popleft())
                        continue
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or self._closed:
                        break
                    self._cond.wait(timeout=remaining)
                # Snapshot the scheduler under the lock: the whole batch
                # is solved — and its cache entries published — by
                # exactly one scheduler version even if a hot-swap lands
                # mid-solve, so no request is ever served a torn mix of
                # two policies.
                scheduler = self.scheduler
                options_key = self._options_key
                method_name = self.method_name
            self._solve_batch(batch, scheduler, options_key, method_name)
            idle_deadline = time.perf_counter() + _WORKER_IDLE_S

    def _solve_batch(
        self,
        batch: List[_PendingRequest],
        scheduler: object,
        options_key: str,
        method_name: str,
    ) -> None:
        graphs = [request.graph for request in batch]
        counts = [request.num_stages for request in batch]
        # Sampled request spans attached at solve start; later coalescers
        # still get results, just no solve span (their trace shows the
        # coalesced event instead).
        tracer = self.telemetry.tracer
        parent_spans: List[object] = []
        if tracer is not None:
            with self._cond:
                parent_spans = [
                    waiter[3]
                    for request in batch
                    for waiter in request.waiters
                    if waiter[3] is not None
                ]
        solve_span = None
        if parent_spans:
            # One live solve span under the first sampled request; the
            # other sampled requests in the batch get mirrored records
            # below (a batch solve genuinely is one shared operation).
            solve_span = tracer.span(
                "solve",
                parent=parent_spans[0],
                batch_size=len(batch),
                method=method_name,
            )
        solve_start = time.time()
        try:
            # Activating the solve span lets the decode-pool adapter
            # (and any other in-scheduler instrumentation) attach its
            # worker round-trip sub-spans via current_span().
            activation = (
                solve_span.activate() if solve_span is not None else None
            )
            try:
                if activation is not None:
                    activation.__enter__()
                batched = getattr(scheduler, "schedule_batch", None)
                with_deadline = getattr(scheduler, "schedule_with_deadline", None)
                has_deadlines = callable(with_deadline) and any(
                    request.deadline_ms is not None for request in batch
                )
                if has_deadlines:
                    # Deadline requests are paced individually: each
                    # gets whatever wall-clock budget queueing left it
                    # (floored at 1 ms so a late request still races the
                    # fast lanes instead of erroring).
                    results: List[ScheduleResult] = []
                    for request in batch:
                        if request.deadline_ms is None:
                            results.append(
                                scheduler.schedule(  # type: ignore[attr-defined]
                                    request.graph, request.num_stages
                                )
                            )
                            continue
                        waited_ms = (
                            time.perf_counter() - request.submit_time
                        ) * 1000.0
                        remaining_ms = max(1.0, request.deadline_ms - waited_ms)
                        results.append(
                            with_deadline(
                                request.graph, request.num_stages, remaining_ms
                            )
                        )
                elif callable(batched) and len(batch) > 1:
                    results = batched(graphs, counts)
                else:
                    results = [
                        scheduler.schedule(graph, stages)  # type: ignore[attr-defined]
                        for graph, stages in zip(graphs, counts)
                    ]
            finally:
                if activation is not None:
                    activation.__exit__(None, None, None)
            if len(results) != len(batch):
                raise ServiceError(
                    f"scheduler returned {len(results)} results for a "
                    f"batch of {len(batch)}"
                )
        except BaseException as exc:  # propagate to every waiter
            if solve_span is not None:
                solve_span.set_attr("error", repr(exc))
                solve_span.end(status="error")
            with self._cond:
                waiters = []
                for request in batch:
                    self._inflight.pop(request.key, None)
                    # Take ownership of the waiters under the lock:
                    # a concurrent close() failing pending requests
                    # empties the same lists, so each future is resolved
                    # by exactly one of the two paths.
                    waiters.extend(request.waiters)
                    request.waiters = []
            for future, _, _, _ in waiters:
                if not future.done():
                    future.set_exception(exc)
            return
        solve_end = time.time()
        if solve_span is not None:
            solve_span.end()
            for extra in parent_spans[1:]:
                tracer.record_span(
                    "solve",
                    solve_start,
                    solve_end,
                    extra.trace_id,
                    extra.span_id,
                    attrs={
                        "batch_size": len(batch),
                        "method": method_name,
                        "shared": True,
                    },
                )
        self._m_batches.inc()
        self._m_scheduled.inc(len(batch))
        # Provenance carried into the persistent tier: which scheduler
        # configuration produced these entries and (for pool-decoded
        # schedulers) which published weights epoch — the audit trail
        # behind durable promotion invalidation.
        provenance: Dict[str, object] = {"options_fingerprint": options_key}
        epoch = getattr(scheduler, "epoch", None)
        if isinstance(epoch, int):
            provenance["weights_epoch"] = epoch
        for request, result in zip(batch, results):
            result.extras.setdefault("cache_hit", False)
            result.extras.setdefault("service", method_name)
            if request.deadline_ms is not None:
                elapsed_ms = (
                    time.perf_counter() - request.submit_time
                ) * 1000.0
                outcome = "hit" if elapsed_ms <= request.deadline_ms else "miss"
                self._m_deadline[outcome].inc()
                result.extras.setdefault("service_deadline_ms", request.deadline_ms)
                result.extras["service_deadline_hit"] = outcome == "hit"
            # Anytime answers that did not run every lane to completion
            # are deadline-shaped, not canonical: serve them, but keep
            # them out of the cache/store tier so the next request for
            # this fingerprint re-solves at full quality.
            publishable = bool(result.extras.get("anytime_complete", True))
            payload = CachedSchedule(
                assignment=dict(result.schedule.assignment),
                num_stages=request.num_stages,
                method=result.method,
                objective=result.objective,
                status=result.status,
                solve_time=result.solve_time,
                provenance=provenance,
            )
            # Publish to the cache *before* retiring the in-flight entry
            # so a concurrent submit always finds the key in one of the
            # two (no duplicate solve window).  The entry is published
            # under the options key of the scheduler that actually
            # solved the batch: after a mid-flight hot-swap the request
            # key's (pre-swap) options fingerprint no longer describes
            # this result, and a fresh key is derived instead.
            publish_key = (
                request.key
                if request.key[2] == options_key
                else ScheduleCache.make_key(
                    request.key[0], request.num_stages, options_key
                )
            )
            publish_start = time.time()
            if publishable:
                self.cache.put(publish_key, payload)
            publish_end = time.time()
            now = time.perf_counter()
            with self._cond:
                self._inflight.pop(request.key, None)
                # Ownership transfer (see the error path above): a
                # concurrent close() must never race us to these futures.
                waiters = request.waiters
                request.waiters = []
            for _, _, submitted, _ in waiters:
                self._m_latency.observe(now - submitted)
            for future, waiter_graph, _, waiter_span in waiters:
                if waiter_span is not None and tracer is not None:
                    tracer.record_span(
                        "publish",
                        publish_start,
                        publish_end,
                        waiter_span.trace_id,
                        waiter_span.span_id,
                        attrs={
                            "key": publish_key[0][:12],
                            "published": publishable,
                        },
                    )
                if waiter_graph is result.schedule.graph:
                    served = result
                else:
                    served = self._bind(
                        payload,
                        waiter_graph,
                        cache_hit=False,
                        method_name=method_name,
                    )
                self._notify(waiter_graph, request.num_stages, served)
                if not future.done():
                    future.set_result(served)

    # ------------------------------------------------------------------
    def _bind(
        self,
        payload: CachedSchedule,
        graph: ComputationalGraph,
        cache_hit: bool,
        lookup_seconds: float = 0.0,
        *,
        method_name: str,
    ) -> ScheduleResult:
        """Materialize a cached payload against the caller's graph.

        ``method_name`` is required (callers read it under the lock at
        submit time) so this helper never touches hot-swappable service
        state outside a lock context.
        """
        schedule = Schedule(graph, payload.num_stages, dict(payload.assignment))
        return ScheduleResult(
            schedule=schedule,
            solve_time=lookup_seconds if cache_hit else payload.solve_time,
            method=payload.method,
            objective=payload.objective,
            status=payload.status,
            extras={
                "cache_hit": cache_hit,
                "service": method_name,
                "solver_seconds": payload.solve_time,
            },
        )

    # ------------------------------------------------------------------
    # hot swap / observers
    # ------------------------------------------------------------------
    def _wrap_scheduler(self, scheduler: object) -> object:
        """Route ``scheduler``'s decode through the decode pool, if any.

        No-op without a pool, for schedulers the pool cannot serve
        (heuristic baselines fall back to in-process decoding), and for
        already-wrapped adapters.  Otherwise the scheduler's weights are
        published as a fresh epoch and a bit-identical
        :class:`~repro.service.workers.WorkerDecodeScheduler` is
        returned — the hot-swap path goes through here too, which is how
        ``swap_scheduler`` / ``promote_challenger`` atomically retarget
        every worker in the pool.
        """
        if self._decode_pool is None:
            return scheduler
        from repro.service.workers import (
            WorkerDecodeScheduler,
            supports_worker_decode,
        )

        if not supports_worker_decode(scheduler):
            return scheduler
        epoch = self._decode_pool.publish_scheduler(scheduler)
        return WorkerDecodeScheduler(scheduler, self._decode_pool, epoch)

    def swap_scheduler(self, scheduler: object) -> str:
        """Atomically replace the scheduler behind this service.

        The champion/challenger promotion path: once the new scheduler is
        installed, every subsequent :meth:`submit` keys requests under
        its options fingerprint, so stale cached schedules are naturally
        keyed out (evict them eagerly with
        :meth:`ScheduleCache.invalidate_options` using the returned old
        key).  Requests already queued or in flight are solved entirely
        by whichever scheduler version the worker snapshots for their
        batch — each request is served bit-identically by exactly one of
        the two versions, never a torn mix.

        Returns the *previous* options fingerprint.
        """
        if not callable(getattr(scheduler, "schedule", None)):
            raise ServiceError(
                "scheduler must expose a schedule(graph, num_stages) method"
            )
        # Publishing to the decode pool and the weight digest are both
        # O(model size); do them outside the lock.
        scheduler = self._wrap_scheduler(scheduler)
        options_key = scheduler_options_key(scheduler)
        method_name = str(
            getattr(scheduler, "method_name", type(scheduler).__name__)
        )
        with self._cond:
            if self._closed:
                raise ServiceError("service is closed")
            old_key = self._options_key
            self.scheduler = scheduler
            self.method_name = method_name
            self._options_key = options_key
            self._m_swaps.inc()
            self._cond.notify_all()
        return old_key

    def add_serve_listener(
        self, listener: Callable[[ComputationalGraph, int, ScheduleResult], None]
    ) -> None:
        """Register ``listener(graph, num_stages, result)`` per serve.

        Called once per resolved request (cache hits included) with the
        caller's own graph and the result it received — the hook the
        online-adaptation experience recorder attaches to.  Listeners run
        on the serving thread outside the service lock; exceptions are
        swallowed so a faulty observer can never fail a request, but
        never silently: each one increments
        ``ServiceStats.listener_errors`` and the first is logged.
        """
        if not callable(listener):
            raise ServiceError("serve listener must be callable")
        with self._cond:
            self._listeners.append(listener)

    def remove_serve_listener(self, listener: Callable) -> None:
        """Detach a previously registered listener (missing ones no-op)."""
        with self._cond:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def _notify(
        self, graph: ComputationalGraph, num_stages: int, result: ScheduleResult
    ) -> None:
        with self._cond:
            listeners = list(self._listeners)
        notify_serve_listeners(
            listeners, graph, num_stages, result, self._record_listener_error
        )

    def _record_listener_error(self) -> bool:
        # The cond lock serializes increment-then-read so exactly one
        # caller observes the count at 1 (and logs the traceback).
        with self._cond:
            self._m_listener_errors.inc()
            return self._m_listener_errors.value == 1

    # ------------------------------------------------------------------
    # stats / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Snapshot of counters, batch sizes and service latency.

        A view over the registry instruments: the numbers here are the
        same ones :meth:`~repro.obs.MetricsRegistry.render_prometheus`
        exposes, read from the same objects.
        """
        requests = self._m_requests.value
        hits = self._m_cache_hits.value
        batches = self._m_batches.value
        scheduled = self._m_scheduled.value
        latency = self._m_latency.snapshot()
        return ServiceStats(
            requests=requests,
            cache_hits=hits,
            coalesced=self._m_coalesced.value,
            batches=batches,
            scheduled_graphs=scheduled,
            mean_batch_size=scheduled / batches if batches else 0.0,
            hit_rate=hits / requests if requests else 0.0,
            latency_mean_s=latency.mean,
            latency_p50_s=latency.percentile(50) if latency.count else 0.0,
            latency_p99_s=latency.percentile(99) if latency.count else 0.0,
            cache=self.cache.stats(),
            swaps=self._m_swaps.value,
            listener_errors=self._m_listener_errors.value,
        )

    def latency_snapshot(self):
        """Merge-ready snapshot of the registry latency histogram.

        The sharded front tier pools these per-shard snapshots (bucket
        counts merge losslessly; raw percentiles do not compose) to
        compute tier-wide p50/p99.
        """
        return self._m_latency.snapshot()

    def invalidate_options(self, options_key: str) -> int:
        """Evict this service's cache entries under ``options_key``.

        Convenience over ``service.cache.invalidate_options`` so callers
        (the promotion path) can invalidate uniformly across single and
        sharded services; returns the number of evicted entries.
        """
        return self.cache.invalidate_options(options_key)

    @property
    def schedule_store(self):
        """The persistent store behind this service (None when memory-only)."""
        disk = getattr(self.cache, "disk", None)
        return getattr(disk, "store", None)

    def snapshot(self):
        """Persist the mounted store's index (see ``DiskScheduleStore``).

        Delegates to the mounted store's ``snapshot()``; raises
        :class:`ServiceError` when the service runs on a purely
        in-memory cache (nothing durable to snapshot).  Appends are
        already flushed per put — a snapshot only bounds the replay a
        reopen has to do and fsyncs the segment tail.
        """
        snapshot = getattr(self.cache, "snapshot", None)
        if not callable(snapshot):
            raise ServiceError(
                "this service has no persistent schedule store to "
                "snapshot (construct it with store= or store_dir=)"
            )
        return snapshot()

    def restore(self, limit: Optional[int] = None) -> int:
        """Warm the in-memory tier from the persistent one (see
        :meth:`~repro.service.store.TieredScheduleStore.restore`).

        Returns the number of preloaded entries; ``0`` when the service
        has no persistent store (reads would not benefit).
        """
        restore = getattr(self.cache, "restore", None)
        if not callable(restore):
            return 0
        return restore(limit)

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting requests; drain what the worker can, fail the rest.

        New submits raise :class:`ServiceError` immediately.  The worker
        is given ``timeout`` seconds to finish already-accepted work;
        any future still unresolved after that (the worker timed out
        mid-solve, died, or the interpreter is tearing down) is failed
        with ``ServiceError("service closed")`` — **no future is ever
        left pending after close() returns**.  Idempotent: repeated
        calls are no-ops beyond re-failing whatever is still pending.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._closed = True
            worker = self._worker
            self._cond.notify_all()
        if worker is not None and worker is not threading.current_thread():
            worker.join(timeout=timeout)
        self._fail_pending(ServiceError("service closed"))
        # An owned decode pool shares this close's deadline (the worker
        # join above consumed part of it) — a shared pool outlives us.
        if self._owns_decode_pool and self._decode_pool is not None:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            self._decode_pool.close(timeout=remaining)
        # An owned disk store is closed last (snapshots its index); a
        # store passed in via store= stays caller-owned and open.
        if self._owned_store is not None:
            self._owned_store.close()

    def _fail_pending(self, exc: Exception) -> None:
        """Resolve every still-pending waiter with ``exc``.

        Ownership of each request's waiter list is taken under the lock
        (mirroring the worker's resolution paths), so a waiter is
        resolved by exactly one of {worker success, worker error, close}
        even when a slow solve completes concurrently with close().
        """
        with self._cond:
            waiters: List[Tuple[Future, ComputationalGraph, float, object]] = []
            # Every queued request is also in _inflight (submit registers
            # both); batch-popped requests remain in _inflight until
            # resolved — so _inflight alone covers all pending work.
            for request in self._inflight.values():
                waiters.extend(request.waiters)
                request.waiters = []
            self._inflight.clear()
            self._queue.clear()
        for future, _, _, _ in waiters:
            if not future.done():
                future.set_exception(exc)


__all__ = [
    "SchedulingService",
    "ServiceStats",
    "ServingFacade",
    "scheduler_options_key",
]
