"""Tiered, persistent, content-addressed schedule store.

The serving tier's answer to "fast for the first million requests after
a deploy": the in-memory LRU :class:`~repro.service.cache.ScheduleCache`
is one *tier* of a pluggable store stack, layered over a crash-safe disk
tier so solved schedules survive process restarts and are shared across
fleet builds.

Three classes compose the subsystem:

:class:`DiskScheduleStore`
    The durable tier.  Entries are appended to content-addressed,
    append-only **segment files** of :mod:`repro.service.wire` store
    frames (``RSPW``-framed, CRC-checksummed); an in-memory index maps
    ``(namespace, fingerprint, num_stages, options_key)`` to a segment
    offset and is rebuilt on open — from an atomic **index snapshot**
    (the :mod:`repro.rl.checkpoints` write-then-rename pattern) plus a
    replay of whatever was appended after it, or from a full segment
    scan when the snapshot is missing or lies about the files.  Every
    way a segment can be damaged — a torn tail write, a flipped bit, a
    frame from a different wire version — is *skipped and counted*
    (:class:`~repro.errors.WireFormatError` is the detection mechanism,
    never the crash), and the scanner resynchronizes on the next valid
    frame so entries and tombstones behind a corruption are not lost.

    Invalidation is durable: retiring a scheduler configuration appends
    a **tombstone** frame, and replay applies entries and tombstones in
    append order — a promoted challenger durably obsoletes the retired
    champion's entries instead of resurrecting them on the next boot,
    while entries a *later* generation re-publishes under the same
    options key survive (rollbacks keep working).

:class:`StoreNamespace`
    A view of one ``namespace`` inside a shared store, duck-typed to the
    :class:`ScheduleCache` protocol.  Namespaces give each shard of a
    :class:`~repro.service.ShardedSchedulingService` (and each method of
    a served comparison dict) its own keyspace in one store directory,
    preserving consistent-hash affinity across restarts.

:class:`TieredScheduleStore`
    The read-through/write-through stack the services actually mount:
    ``get`` answers from the LRU, falls through to disk on a miss and
    promotes disk hits into memory; ``put`` writes through to both
    tiers; ``invalidate_options`` evicts from every tier (memory drop +
    durable tombstone).  It satisfies the same protocol as a bare
    :class:`ScheduleCache`, so every layer that owns a cache — the
    single service, the sharded tier, ``serve_methods``,
    ``build_fleet`` — mounts it unchanged.

Durability model: appends are flushed to the OS on every ``put`` (a
process crash loses nothing), and ``snapshot()`` additionally fsyncs the
active segment and atomically rewrites the index snapshot (a machine
crash then loses at most the un-fsynced tail, which the torn-frame scan
absorbs).  Opening a store never requires a snapshot — the segments
alone are the source of truth.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.errors import ServiceError, WireFormatError
from repro.service.cache import CachedSchedule, CacheKey, CacheStats, ScheduleCache
from repro.service.wire import (
    HEADER_SIZE,
    KIND_STORE_ENTRY,
    KIND_STORE_TOMBSTONE,
    MAGIC,
    StoreEntryRecord,
    StoreTombstoneRecord,
    decode_store_entry,
    decode_store_tombstone,
    encode_store_entry,
    encode_store_tombstone,
    frame_info,
)

#: Store key inside a shared store: the cache key scoped by a namespace.
StoreKey = Tuple[str, str, int, str]

#: Default namespace used by single (unsharded) services.
DEFAULT_NAMESPACE = "default"

#: Rotate the active segment beyond this many bytes.  Segments are read
#: whole during scans, so the cap bounds both scan memory and the blast
#: radius of an unrecoverable corruption.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024

#: Bumped when the index-snapshot layout changes incompatibly (the
#: segments remain readable either way — an unknown snapshot version
#: just forces a full scan).
INDEX_FORMAT_VERSION = 1

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".rsps"


@dataclass(frozen=True)
class DiskStoreStats:
    """Point-in-time counters of one :class:`DiskScheduleStore`."""

    entries: int
    segments: int
    hits: int
    misses: int
    appended: int
    invalidations: int
    tombstones: int
    #: Damaged frames skipped (and counted, never raised) during scans.
    corrupt_frames_skipped: int
    #: Bytes stepped over while resynchronizing past damaged regions.
    bytes_skipped: int
    #: Entries dropped at read time because their frame failed to decode.
    read_errors: int
    #: Full segment scans forced by a missing/invalid/lying snapshot.
    index_rebuilds: int


@dataclass(frozen=True)
class CompactionStats:
    """Outcome of one :meth:`DiskScheduleStore.compact` pass."""

    #: Entries copied into the fresh segment generation.
    entries_live: int
    #: Indexed entries whose frames no longer decoded (dropped, counted
    #: in ``read_errors`` too — compaction never copies garbage).
    entries_dropped: int
    segments_before: int
    segments_after: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_reclaimed(self) -> int:
        return self.bytes_before - self.bytes_after


@dataclass(frozen=True)
class TieredStoreStats:
    """Stats of a :class:`TieredScheduleStore`, CacheStats-compatible.

    The top-level counters describe the *stack* (a hit in either tier is
    a hit; ``size`` is the durable tier's entry count when one is
    mounted), so consumers written against
    :class:`~repro.service.cache.CacheStats` read them unchanged; the
    per-tier breakdowns ride alongside.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    invalidations: int
    #: Disk hits promoted into the memory tier (subset of ``hits``).
    disk_hits: int
    memory: CacheStats
    disk: Optional[DiskStoreStats]

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


class DiskScheduleStore:
    """Crash-safe, append-only, content-addressed schedule store.

    Parameters
    ----------
    directory:
        Store root; created if missing.  Layout: ``segments/seg-*.rsps``
        append-only frame files plus an ``index.json`` snapshot.
    max_segment_bytes:
        Rotation threshold for the active segment.
    snapshot_every:
        Automatically snapshot the index after this many appended
        frames (entries + tombstones); ``0`` disables auto-snapshots
        (``snapshot()``/``close()`` still write one).  Auto-snapshots
        bound the replay tail a reopen has to scan.

    All methods are thread-safe.  The store never raises on damaged
    segment bytes: every torn/truncated/corrupt/wrong-version frame is
    skipped and counted in :meth:`stats`.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        snapshot_every: int = 256,
    ) -> None:
        if max_segment_bytes < 1024:
            raise ServiceError(
                f"max_segment_bytes must be >= 1024, got {max_segment_bytes}"
            )
        if snapshot_every < 0:
            raise ServiceError(
                f"snapshot_every must be >= 0, got {snapshot_every}"
            )
        self.directory = Path(directory)
        self.max_segment_bytes = max_segment_bytes
        self.snapshot_every = snapshot_every
        self._segments_dir = self.directory / "segments"
        self._segments_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        #: key -> (segment file name, frame offset, frame length); dict
        #: insertion order is append order, which keys() exposes so the
        #: memory tier can preload most-recent entries first.
        self._index: Dict[StoreKey, Tuple[str, int, int]] = {}
        #: (namespace, options_key) -> keys — the same O(stale)
        #: invalidation index the memory tier keeps.
        self._by_options: Dict[Tuple[str, str], Set[StoreKey]] = {}
        self._closed = False
        self._append_handle = None
        self._append_name = ""
        self._append_offset = 0
        self._appends_since_snapshot = 0
        # -- counters (guarded by self._lock) ---------------------------
        self._hits = 0
        self._misses = 0
        self._appended = 0
        self._invalidations = 0
        self._tombstones = 0
        self._corrupt_frames = 0
        self._bytes_skipped = 0
        self._read_errors = 0
        self._index_rebuilds = 0
        # Recovery mutates lock-guarded state; hold the lock for the
        # whole replay even though __init__ publishes nothing yet (the
        # RLock makes the *_locked helpers' contract literally true).
        with self._lock:
            self._open_locked()

    # ------------------------------------------------------------------
    # open / recovery
    # ------------------------------------------------------------------
    def _segment_files(self) -> List[Path]:
        return sorted(
            p
            for p in self._segments_dir.glob(
                f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"
            )
            if p.is_file()
        )

    def _open_locked(self) -> None:
        segments = self._segment_files()
        positions = self._load_snapshot_locked(segments)
        for path in segments:
            start = positions.get(path.name, 0)
            self._scan_segment_locked(path, start)
        # Append into the newest segment (or a fresh one when none
        # exists or the newest is already over the rotation threshold).
        if segments:
            last = segments[-1]
            size = last.stat().st_size
            if size < self.max_segment_bytes:
                self._append_name = last.name
                self._append_offset = size
                self._append_handle = open(last, "ab")
                return
        self._rotate_locked(next_index=len(segments) + 1)

    def _load_snapshot_locked(self, segments: List[Path]) -> Dict[str, int]:
        """Adopt the index snapshot if it is consistent with the files.

        Returns per-segment scan positions (bytes already covered by the
        adopted snapshot).  Any inconsistency — unreadable JSON, unknown
        version, a referenced segment that is missing, a recorded
        position or entry pointing past the file's actual EOF — discards
        the snapshot entirely and falls back to a full scan (position 0
        everywhere), counted in ``index_rebuilds``.
        """
        path = self.directory / "index.json"
        if not path.exists():
            if segments:
                self._index_rebuilds += 1
            return {}
        try:
            snapshot = json.loads(path.read_text())
            if (
                not isinstance(snapshot, dict)
                or snapshot.get("format_version") != INDEX_FORMAT_VERSION
            ):
                raise ValueError("unknown snapshot layout")
            recorded = snapshot["segments"]
            entries = snapshot["entries"]
            if not isinstance(recorded, dict) or not isinstance(entries, list):
                raise ValueError("malformed snapshot")
            sizes = {p.name: p.stat().st_size for p in segments}
            for name, covered in recorded.items():
                if (
                    not isinstance(covered, int)
                    or name not in sizes
                    or covered < 0
                    or covered > sizes[name]
                ):
                    raise ValueError(
                        f"snapshot covers {covered!r} bytes of segment "
                        f"{name!r} which holds {sizes.get(name)}"
                    )
            index: Dict[StoreKey, Tuple[str, int, int]] = {}
            for entry in entries:
                ns, fp, stages, opts, seg, offset, length = entry
                key = (str(ns), str(fp), int(stages), str(opts))
                if (
                    seg not in recorded
                    or not isinstance(offset, int)
                    or not isinstance(length, int)
                    or offset < 0
                    or length <= 0
                    or offset + length > recorded[seg]
                ):
                    raise ValueError(
                        f"snapshot entry for {key} points outside the "
                        f"covered bytes of segment {seg!r}"
                    )
                index[key] = (str(seg), offset, length)
        except (OSError, ValueError, KeyError, TypeError):
            self._index_rebuilds += 1
            return {}
        for key, location in index.items():
            self._index[key] = location
            self._by_options.setdefault((key[0], key[3]), set()).add(key)
        return {name: int(covered) for name, covered in recorded.items()}

    def _scan_segment_locked(self, path: Path, start: int) -> None:
        """Replay frames from ``start``, skipping damage, applying order.

        Entries insert into the index; tombstones drop every currently
        indexed entry under their (namespace, options_key).  On a
        damaged frame the scanner counts it and resynchronizes on the
        next byte offset whose header magic parses into a frame that
        fully decodes — so one flipped bit costs one frame, not the
        segment's tail (and never a later tombstone).
        """
        try:
            data = path.read_bytes()
        except OSError:
            self._corrupt_frames += 1
            return
        offset = start
        while offset < len(data):
            frame, total = self._parse_frame_at(data, offset)
            if frame is None:
                resume = self._resync(data, offset + 1)
                self._corrupt_frames += 1
                self._bytes_skipped += resume - offset
                offset = resume
                continue
            kind, record = frame
            if kind == KIND_STORE_ENTRY:
                key = (
                    record.namespace,
                    record.fingerprint,
                    record.num_stages,
                    record.options_key,
                )
                self._index[key] = (path.name, offset, total)
                self._by_options.setdefault(
                    (key[0], key[3]), set()
                ).add(key)
            else:
                self._apply_tombstone_locked(
                    record.namespace, record.options_key
                )
                self._tombstones += 1
            offset += total
        return

    @staticmethod
    def _parse_frame_at(data: bytes, offset: int):
        """Fully validate one frame at ``offset``; None when damaged.

        Returns ``((kind, decoded_record), total_length)`` on success,
        ``(None, 0)`` on any damage (truncation, bad magic/version, CRC
        failure, malformed payload, unexpected kind).
        """
        try:
            kind, total = frame_info(data[offset : offset + HEADER_SIZE])
            if offset + total > len(data):
                raise WireFormatError("frame extends past segment EOF")
            frame = data[offset : offset + total]
            if kind == KIND_STORE_ENTRY:
                return (kind, decode_store_entry(frame)), total
            if kind == KIND_STORE_TOMBSTONE:
                return (kind, decode_store_tombstone(frame)), total
            raise WireFormatError(f"unexpected frame kind {kind} in segment")
        except WireFormatError:
            return None, 0

    def _resync(self, data: bytes, start: int) -> int:
        """First offset >= start holding a fully valid frame (or EOF)."""
        offset = data.find(MAGIC, start)
        while offset != -1:
            frame, _ = self._parse_frame_at(data, offset)
            if frame is not None:
                return offset
            offset = data.find(MAGIC, offset + 1)
        return len(data)

    def _apply_tombstone_locked(self, namespace: str, options_key: str) -> None:
        stale = self._by_options.pop((namespace, options_key), None)
        if stale:
            for key in stale:
                self._index.pop(key, None)

    # ------------------------------------------------------------------
    # namespaced store protocol (used via StoreNamespace views)
    # ------------------------------------------------------------------
    def namespace(self, name: str = DEFAULT_NAMESPACE) -> "StoreNamespace":
        """A ScheduleCache-protocol view of one namespace in this store."""
        return StoreNamespace(self, name)

    def get(self, namespace: str, key: CacheKey) -> Optional[CachedSchedule]:
        """Fetch (and re-verify) one entry; damaged entries read as misses."""
        with self._lock:
            if self._closed:
                raise ServiceError("schedule store is closed")
            store_key = (namespace, key[0], key[1], key[2])
            location = self._index.get(store_key)
            if location is None:
                self._misses += 1
                return None
            segment, offset, length = location
            try:
                with open(self._segments_dir / segment, "rb") as handle:
                    handle.seek(offset)
                    frame = handle.read(length)
                record = decode_store_entry(frame)
                if (
                    record.namespace,
                    record.fingerprint,
                    record.num_stages,
                    record.options_key,
                ) != store_key:
                    raise WireFormatError(
                        "store entry decodes to a different key than its "
                        "index slot"
                    )
            except (OSError, WireFormatError):
                # The index pointed at bytes that no longer decode to
                # this key (bit rot, a truncated file, ...): drop the
                # entry and answer a miss — a damaged store degrades to
                # a colder one, never to a wrong or crashing one.
                self._index.pop(store_key, None)
                self._drop_from_options_locked(store_key)
                self._read_errors += 1
                self._misses += 1
                return None
            self._hits += 1
            return CachedSchedule(
                assignment=record.assignment,
                num_stages=record.num_stages,
                method=record.method,
                objective=record.objective,
                status=record.status,
                solve_time=record.solve_time,
                provenance=record.provenance,
            )

    def put(self, namespace: str, key: CacheKey, value: CachedSchedule) -> None:
        """Append one entry and index it (flushed, not fsynced)."""
        record = StoreEntryRecord(
            namespace=namespace,
            fingerprint=key[0],
            num_stages=key[1],
            options_key=key[2],
            assignment=dict(value.assignment),
            method=value.method,
            objective=value.objective,
            status=value.status,
            solve_time=value.solve_time,
            provenance=(
                dict(value.provenance) if value.provenance is not None else None
            ),
        )
        frame = encode_store_entry(record)
        with self._lock:
            if self._closed:
                raise ServiceError("schedule store is closed")
            store_key = (namespace, key[0], key[1], key[2])
            offset = self._append_frame_locked(frame)
            self._index[store_key] = (self._append_name, offset, len(frame))
            self._by_options.setdefault(
                (namespace, key[2]), set()
            ).add(store_key)
            self._appended += 1
            self._maybe_snapshot_locked()

    def contains(self, namespace: str, key: CacheKey) -> bool:
        with self._lock:
            return (
                not self._closed
                and (namespace, key[0], key[1], key[2]) in self._index
            )

    def invalidate_options(self, namespace: str, options_key: str) -> int:
        """Durably retire every ``options_key`` entry in ``namespace``.

        Drops the entries from the index *and* appends a tombstone
        frame, so the invalidation survives a process restart (replay
        applies it in order).  Returns the number of dropped entries; a
        tombstone is appended even when zero are currently indexed, so
        entries hidden behind an unscanned corruption can never outlive
        a promotion.
        """
        frame = encode_store_tombstone(
            StoreTombstoneRecord(namespace=namespace, options_key=options_key)
        )
        with self._lock:
            if self._closed:
                raise ServiceError("schedule store is closed")
            stale = self._by_options.pop((namespace, options_key), set())
            for key in stale:
                self._index.pop(key, None)
            self._append_frame_locked(frame)
            self._tombstones += 1
            self._invalidations += len(stale)
            self._maybe_snapshot_locked()
            return len(stale)

    def keys(self, namespace: str) -> List[CacheKey]:
        """Cache keys of ``namespace`` in append (oldest-first) order."""
        with self._lock:
            return [
                (key[1], key[2], key[3])
                for key in self._index
                if key[0] == namespace
            ]

    def namespaces(self) -> List[str]:
        """Distinct namespaces currently holding entries."""
        with self._lock:
            return sorted({key[0] for key in self._index})

    def count(self, namespace: Optional[str] = None) -> int:
        with self._lock:
            if namespace is None:
                return len(self._index)
            return sum(1 for key in self._index if key[0] == namespace)

    def __len__(self) -> int:
        return self.count()

    def _drop_from_options_locked(self, store_key: StoreKey) -> None:
        keys = self._by_options.get((store_key[0], store_key[3]))
        if keys is not None:
            keys.discard(store_key)
            if not keys:
                del self._by_options[(store_key[0], store_key[3])]

    # ------------------------------------------------------------------
    # appending / rotation / snapshot / lifecycle
    # ------------------------------------------------------------------
    def _append_frame_locked(self, frame: bytes) -> int:
        if self._append_offset + len(frame) > self.max_segment_bytes and (
            self._append_offset > 0
        ):
            next_index = (
                int(self._append_name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])
                + 1
            )
            self._rotate_locked(next_index)
        offset = self._append_offset
        self._append_handle.write(frame)
        # Flush to the OS on every append: a *process* crash then loses
        # nothing, and the torn-tail scan absorbs a machine crash.
        self._append_handle.flush()
        self._append_offset += len(frame)
        self._appends_since_snapshot += 1
        return offset

    def _rotate_locked(self, next_index: int) -> None:
        if self._append_handle is not None:
            self._append_handle.close()
        self._append_name = _segment_name(next_index)
        path = self._segments_dir / self._append_name
        self._append_handle = open(path, "ab")
        self._append_offset = path.stat().st_size

    def _maybe_snapshot_locked(self) -> None:
        if (
            self.snapshot_every
            and self._appends_since_snapshot >= self.snapshot_every
        ):
            self._snapshot_locked()

    def snapshot(self) -> Path:
        """Atomically persist the index; returns the snapshot path.

        fsyncs the active segment first, then writes ``index.json`` via
        the write-then-rename pattern — an interrupted snapshot leaves
        the previous one intact, and a snapshot never claims bytes that
        are not durably on disk.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("schedule store is closed")
            return self._snapshot_locked()

    def _snapshot_locked(self) -> Path:
        self._append_handle.flush()
        os.fsync(self._append_handle.fileno())
        covered = {
            path.name: path.stat().st_size for path in self._segment_files()
        }
        covered[self._append_name] = self._append_offset
        payload = {
            "format_version": INDEX_FORMAT_VERSION,
            "segments": covered,
            "entries": [
                [key[0], key[1], key[2], key[3], seg, offset, length]
                for key, (seg, offset, length) in self._index.items()
            ],
        }
        path = self.directory / "index.json"
        tmp = self.directory / "index.json.tmp"
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        self._appends_since_snapshot = 0
        return path

    def compact(self) -> CompactionStats:
        """Rewrite the live entries into fresh segments; drop the garbage.

        The log is append-only, so superseded entry versions, tombstoned
        groups and the tombstones themselves accumulate as dead bytes
        every reopen still has to scan.  Compaction copies exactly the
        currently indexed frames — in index (append) order — into new
        segments numbered after the current tail, fsyncs them, retargets
        the index, deletes the old segments, and snapshots.  Tombstones
        are not carried over: with every dead group's entries physically
        gone there is nothing left for them to retire.

        Crash-safe at every point in that sequence: before the old
        segments are unlinked, a replay sees both generations and
        converges on the same index (the copies sort after, and therefore
        replay after, the originals — including after any old
        tombstone); once they are gone, the stale snapshot fails its
        consistency check and a full scan of the new segments rebuilds
        the same index.

        Source segments are read whole (same memory bound as the reopen
        scan).  Returns a :class:`CompactionStats`; a garbage-free store
        still rewrites itself, so callers wanting to skip no-op passes
        should gate on ``bytes_reclaimed``/``stats()`` themselves.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("schedule store is closed")
            old_segments = self._segment_files()
            bytes_before = sum(p.stat().st_size for p in old_segments)
            # Freeze the active segment: from here its bytes are input.
            self._append_handle.flush()
            os.fsync(self._append_handle.fileno())
            self._append_handle.close()
            self._append_handle = None
            next_index = 1
            if old_segments:
                next_index = (
                    int(
                        old_segments[-1].name[
                            len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)
                        ]
                    )
                    + 1
                )
            # Index insertion order is append order even across segment
            # boundaries (updates keep their key's original position),
            # so copying in index order preserves recency semantics and
            # the oldest-first contract of keys().
            new_index: Dict[StoreKey, Tuple[str, int, int]] = {}
            new_paths: List[Path] = []
            dropped = 0
            writer = None
            writer_name = ""
            writer_offset = 0
            source_bytes: Dict[str, bytes] = {}
            for key, (seg, offset, length) in self._index.items():
                data = source_bytes.get(seg)
                if data is None:
                    try:
                        data = (self._segments_dir / seg).read_bytes()
                    except OSError:
                        data = b""
                    source_bytes[seg] = data
                frame = data[offset : offset + length]
                try:
                    record = decode_store_entry(frame)
                    if (
                        record.namespace,
                        record.fingerprint,
                        record.num_stages,
                        record.options_key,
                    ) != key:
                        raise WireFormatError(
                            "store entry decodes to a different key than "
                            "its index slot"
                        )
                except WireFormatError:
                    dropped += 1
                    self._read_errors += 1
                    continue
                if writer is None or (
                    writer_offset + len(frame) > self.max_segment_bytes
                    and writer_offset > 0
                ):
                    if writer is not None:
                        writer.flush()
                        os.fsync(writer.fileno())
                        writer.close()
                    writer_name = _segment_name(next_index)
                    next_index += 1
                    path = self._segments_dir / writer_name
                    writer = open(path, "ab")
                    writer_offset = 0
                    new_paths.append(path)
                writer.write(frame)
                new_index[key] = (writer_name, writer_offset, len(frame))
                writer_offset += len(frame)
            if writer is None:
                # No live entries — still need an active tail segment.
                writer_name = _segment_name(next_index)
                path = self._segments_dir / writer_name
                writer = open(path, "ab")
                writer_offset = 0
                new_paths.append(path)
            writer.flush()
            os.fsync(writer.fileno())
            # The new generation is durable: retarget the index and the
            # append tail before the old files go away.
            self._index = new_index
            self._by_options = {}
            for key in new_index:
                self._by_options.setdefault((key[0], key[3]), set()).add(key)
            self._append_handle = writer
            self._append_name = writer_name
            self._append_offset = writer_offset
            for path in old_segments:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - platform dependent
                    pass
            self._snapshot_locked()
            bytes_after = sum(p.stat().st_size for p in new_paths)
            return CompactionStats(
                entries_live=len(new_index),
                entries_dropped=dropped,
                segments_before=len(old_segments),
                segments_after=len(new_paths),
                bytes_before=bytes_before,
                bytes_after=bytes_after,
            )

    def stats(self) -> DiskStoreStats:
        with self._lock:
            return DiskStoreStats(
                entries=len(self._index),
                segments=len(self._segment_files()),
                hits=self._hits,
                misses=self._misses,
                appended=self._appended,
                invalidations=self._invalidations,
                tombstones=self._tombstones,
                corrupt_frames_skipped=self._corrupt_frames,
                bytes_skipped=self._bytes_skipped,
                read_errors=self._read_errors,
                index_rebuilds=self._index_rebuilds,
            )

    def close(self) -> None:
        """Snapshot the index and release the segment handle (idempotent)."""
        with self._lock:
            if self._closed:
                return
            try:
                self._snapshot_locked()
            finally:
                self._closed = True
                if self._append_handle is not None:
                    self._append_handle.close()
                    self._append_handle = None

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "DiskScheduleStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            # Interpreter teardown: file machinery may already be gone.
            pass


class StoreNamespace:
    """One namespace of a :class:`DiskScheduleStore`, cache-protocol shaped.

    Implements exactly the surface :class:`ScheduleCache` exposes
    (``get``/``put``/``__contains__``/``__len__``/``invalidate_options``
    /``stats``/``make_key``), scoped to one namespace — the adapter that
    lets a shared store directory back many shards and methods at once.
    """

    make_key = staticmethod(ScheduleCache.make_key)

    def __init__(self, store: DiskScheduleStore, namespace: str) -> None:
        if not isinstance(namespace, str) or not namespace:
            raise ServiceError(
                f"store namespace must be a non-empty string, got {namespace!r}"
            )
        self.store = store
        self.namespace = namespace

    def get(self, key: CacheKey) -> Optional[CachedSchedule]:
        return self.store.get(self.namespace, key)

    def put(self, key: CacheKey, value: CachedSchedule) -> None:
        self.store.put(self.namespace, key, value)

    def __contains__(self, key: CacheKey) -> bool:
        return self.store.contains(self.namespace, key)

    def __len__(self) -> int:
        return self.store.count(self.namespace)

    def keys(self) -> List[CacheKey]:
        return self.store.keys(self.namespace)

    def invalidate_options(self, options_key: str) -> int:
        return self.store.invalidate_options(self.namespace, str(options_key))

    def snapshot(self) -> Path:
        return self.store.snapshot()

    def stats(self) -> DiskStoreStats:
        return self.store.stats()


class TieredScheduleStore:
    """Read-through/write-through LRU-over-disk schedule store.

    ``memory`` is any :class:`ScheduleCache`; ``disk`` is a
    :class:`StoreNamespace` (or anything cache-protocol shaped), or
    ``None`` for a memory-only stack (then this class is a transparent
    wrapper, useful for uniform wiring).  Satisfies the
    :class:`ScheduleCache` protocol itself, so services mount it as
    their ``cache`` unchanged.
    """

    make_key = staticmethod(ScheduleCache.make_key)

    def __init__(
        self,
        memory: Optional[ScheduleCache] = None,
        disk: Optional[StoreNamespace] = None,
        memory_capacity: int = 1024,
    ) -> None:
        self.memory = memory if memory is not None else ScheduleCache(memory_capacity)
        self.disk = disk
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._invalidations = 0

    @property
    def capacity(self) -> int:
        return self.memory.capacity

    def get(self, key: CacheKey) -> Optional[CachedSchedule]:
        entry, _tier = self.lookup(key)
        return entry

    def lookup(
        self, key: CacheKey
    ) -> Tuple[Optional[CachedSchedule], Optional[str]]:
        """Like :meth:`get`, but also report which tier answered.

        Returns ``(entry, tier)`` with ``tier`` one of ``"memory"``,
        ``"disk"`` or ``None`` (miss) — the label the serving layer's
        ``respect_tier_lookups_total`` series and trace spans carry.
        Hit/miss accounting happens exactly once here (:meth:`get`
        delegates).
        """
        tier: Optional[str] = None
        entry = self.memory.get(key)
        if entry is not None:
            tier = "memory"
        elif self.disk is not None:
            entry = self.disk.get(key)
            if entry is not None:
                tier = "disk"
                # Promote: the next lookup answers from memory.
                self.memory.put(key, entry)
                with self._lock:
                    self._disk_hits += 1
        with self._lock:
            if entry is None:
                self._misses += 1
            else:
                self._hits += 1
        return entry, tier

    def put(self, key: CacheKey, value: CachedSchedule) -> None:
        self.memory.put(key, value)
        if self.disk is not None:
            self.disk.put(key, value)

    def __contains__(self, key: CacheKey) -> bool:
        if key in self.memory:
            return True
        return self.disk is not None and key in self.disk

    def __len__(self) -> int:
        if self.disk is not None:
            return len(self.disk)
        return len(self.memory)

    def invalidate_options(self, options_key: str) -> int:
        """Evict ``options_key`` from every tier; durable when disk-backed.

        Returns the entry count of the deepest tier that held them (the
        durable tier is a superset of the LRU under write-through, so
        its count is the authoritative number of retired schedules).
        """
        dropped_memory = self.memory.invalidate_options(options_key)
        dropped_disk = (
            self.disk.invalidate_options(options_key)
            if self.disk is not None
            else 0
        )
        dropped = max(dropped_memory, dropped_disk)
        with self._lock:
            self._invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Drop the memory tier and retire every disk entry durably."""
        self.memory.clear()
        if self.disk is not None:
            for options_key in {key[2] for key in self.disk.keys()}:
                self.disk.invalidate_options(options_key)

    def snapshot(self) -> Path:
        """Persist the durable tier's index (write-through means the
        memory tier holds nothing the disk does not already have)."""
        if self.disk is None:
            raise ServiceError(
                "this store stack has no persistent tier to snapshot"
            )
        return self.disk.snapshot()

    def restore(self, limit: Optional[int] = None) -> int:
        """Preload the memory tier from disk (most recent entries last).

        Returns how many entries were loaded (at most ``limit``,
        default: the LRU capacity).  Optional — reads fall through to
        disk either way — but a restored tier serves its first requests
        at memory-hit latency instead of disk-hit latency.
        """
        if self.disk is None:
            return 0
        budget = self.memory.capacity if limit is None else limit
        keys = self.disk.keys()[-budget:] if budget else []
        loaded = 0
        for key in keys:
            entry = self.disk.get(key)
            if entry is not None:
                self.memory.put(key, entry)
                loaded += 1
        return loaded

    def stats(self) -> TieredStoreStats:
        memory = self.memory.stats()
        disk = self.disk.stats() if self.disk is not None else None
        with self._lock:
            hits = self._hits
            misses = self._misses
            disk_hits = self._disk_hits
            invalidations = self._invalidations
        return TieredStoreStats(
            hits=hits,
            misses=misses,
            evictions=memory.evictions,
            size=disk.entries if disk is not None else memory.size,
            capacity=memory.capacity,
            invalidations=invalidations,
            disk_hits=disk_hits,
            memory=memory,
            disk=disk,
        )


def mount_store(
    store: Optional[object] = None,
    store_dir: Optional[Union[str, Path]] = None,
    cache: Optional[ScheduleCache] = None,
    cache_capacity: int = 1024,
    namespace: str = DEFAULT_NAMESPACE,
) -> Tuple[object, Optional[DiskScheduleStore]]:
    """Resolve the ``cache=``/``store=``/``store_dir=`` service knobs.

    Returns ``(mounted, owned_disk_store)`` where ``mounted`` satisfies
    the cache protocol and ``owned_disk_store`` is the
    :class:`DiskScheduleStore` the caller must close (only when
    ``store_dir`` was given — a ``store`` passed in stays caller-owned).

    * ``store_dir`` — open (or create) a :class:`DiskScheduleStore`
      there and stack a fresh LRU over its ``namespace``;
    * ``store`` — a :class:`DiskScheduleStore` gets the same stacking
      (shared, not owned); anything else cache-protocol shaped (a
      :class:`TieredScheduleStore`, a bare cache) mounts as-is;
    * ``cache`` — mounts as-is (the pre-store behavior);
    * none of the three — a private LRU of ``cache_capacity`` entries.

    At most one of the three sources may be supplied.
    """
    supplied = [
        name
        for name, value in (
            ("cache", cache),
            ("store", store),
            ("store_dir", store_dir),
        )
        if value is not None
    ]
    if len(supplied) > 1:
        raise ServiceError(
            f"supply at most one of cache=/store=/store_dir=, got "
            f"{'+'.join(supplied)}"
        )
    if store_dir is not None:
        owned = DiskScheduleStore(store_dir)
        return (
            TieredScheduleStore(
                disk=owned.namespace(namespace),
                memory_capacity=cache_capacity,
            ),
            owned,
        )
    if store is not None:
        if isinstance(store, DiskScheduleStore):
            return (
                TieredScheduleStore(
                    disk=store.namespace(namespace),
                    memory_capacity=cache_capacity,
                ),
                None,
            )
        if not callable(getattr(store, "get", None)) or not callable(
            getattr(store, "put", None)
        ):
            raise ServiceError(
                "store= must be a DiskScheduleStore or satisfy the "
                "ScheduleCache protocol (get/put/invalidate_options)"
            )
        return store, None
    if cache is not None:
        return cache, None
    return ScheduleCache(cache_capacity), None


__all__ = [
    "DEFAULT_NAMESPACE",
    "DiskScheduleStore",
    "DiskStoreStats",
    "StoreKey",
    "StoreNamespace",
    "TieredScheduleStore",
    "TieredStoreStats",
    "mount_store",
]
