"""Static invariant analysis for the RESPECT serving stack.

See :mod:`repro.analysis.core` for the framework,
:mod:`repro.analysis.rules` for the repo-specific rules, and
``scripts/lint_repro.py`` for the CLI that gates CI.
"""

from repro.analysis.baseline import Baseline, partition
from repro.analysis.core import (
    DEFAULT_RULE_MODULES,
    Finding,
    Project,
    Rule,
    SourceFile,
    load_rules,
    run_project,
)

__all__ = [
    "Baseline",
    "DEFAULT_RULE_MODULES",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "load_rules",
    "partition",
    "run_project",
]
