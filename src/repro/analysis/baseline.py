"""Checked-in suppression baseline: gate only on *new* findings.

A fresh rule run on a mature codebase surfaces a mix of genuine bugs
(fix them) and accepted debt (burn it down over time).  The baseline
file records the accepted debt as ``fingerprint -> count`` so the
linter exits non-zero only when a finding appears that is not covered —
a new violation, or one more instance of an old one.

Fingerprints come from :attr:`repro.analysis.core.Finding.fingerprint`
and deliberately exclude line numbers, so edits *above* a baselined
finding don't churn the file.  Counts matter: a baseline entry with
``count: 1`` covers exactly one live instance; introducing a second,
textually identical violation still fails the gate.

The file is plain sorted JSON so diffs review like code:

.. code-block:: json

    {
      "version": 1,
      "findings": {
        "3f9c…": {"rule": "…", "path": "…", "message": "…", "count": 1}
      }
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.core import Finding

__all__ = ["Baseline", "partition"]

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """In-memory image of the baseline file."""

    entries: Dict[str, dict] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        entries: Dict[str, dict] = {}
        for finding in findings:
            entry = entries.setdefault(
                finding.fingerprint,
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "symbol": finding.symbol,
                    "message": finding.message,
                    "count": 0,
                },
            )
            entry["count"] += 1
        return cls(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load ``path``; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if (
            not isinstance(payload, dict)
            or payload.get("version") != BASELINE_VERSION
            or not isinstance(payload.get("findings"), dict)
        ):
            raise ValueError(
                f"{path} is not a version-{BASELINE_VERSION} lint baseline"
            )
        entries = {}
        for fingerprint, entry in payload["findings"].items():
            if not isinstance(entry, dict) or not isinstance(
                entry.get("count"), int
            ):
                raise ValueError(
                    f"malformed baseline entry {fingerprint!r} in {path}"
                )
            entries[str(fingerprint)] = dict(entry)
        return cls(entries)

    def write(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": {
                fingerprint: self.entries[fingerprint]
                for fingerprint in sorted(self.entries)
            },
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def __len__(self) -> int:
        return sum(entry["count"] for entry in self.entries.values())


def partition(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into ``(new, baselined)`` plus stale fingerprints.

    Each baseline entry absorbs up to ``count`` live findings with its
    fingerprint; the overflow — and any fingerprint absent from the
    baseline — is *new*.  ``stale`` lists baseline fingerprints whose
    violations no longer exist at their recorded count (fixed code);
    ``--update-baseline`` prunes them so the debt ledger only shrinks
    by deliberate action, never silently grows.
    """
    remaining = {
        fingerprint: entry["count"]
        for fingerprint, entry in baseline.entries.items()
    }
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        if remaining.get(finding.fingerprint, 0) > 0:
            remaining[finding.fingerprint] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale = sorted(
        fingerprint for fingerprint, count in remaining.items() if count > 0
    )
    return new, baselined, stale
