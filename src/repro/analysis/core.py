"""AST-based invariant linting for the RESPECT reproduction.

The serving stack's correctness rests on *conventions* — locks guarding
shared state, seeded-RNG bit-identical replay, frozen wire-format kind
codes, ``respect_*`` metric naming — that hammer tests catch only
probabilistically, after the fact.  This package checks them statically,
on every push, before a violation can land.

The framework is deliberately small:

* :class:`Finding` — one violation: rule id, file, line, severity,
  message, plus a line-independent :attr:`~Finding.fingerprint` so the
  baseline file survives unrelated edits above a finding;
* :class:`Rule` — subclass and implement :meth:`Rule.check_file`
  (per-file AST pass) and/or :meth:`Rule.check_project` (whole-project
  pass for cross-file invariants such as label-set consistency);
* :class:`SourceFile` / :class:`Project` — parsed source with comment
  extraction for suppression directives;
* :func:`run_project` — load, parse, check, filter suppressions, sort.

Suppression is explicit and local: a ``# repro: <token>-ok`` comment on
the offending line (or on the first line of the offending statement)
silences exactly one rule there — e.g. ``# repro: nondeterministic-ok``
for the determinism rule.  Project-wide grandfathering goes through the
checked-in baseline instead (:mod:`repro.analysis.baseline`), which
gates only *new* findings.
"""

from __future__ import annotations

import ast
import hashlib
import importlib
import inspect
import io
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "Project",
    "DEFAULT_RULE_MODULES",
    "load_rules",
    "run_project",
]

#: Modules scanned by :func:`load_rules` for :class:`Rule` subclasses.
#: Adding a rule = writing a module with a Rule subclass and listing it
#: here (or passing the module path to ``load_rules`` explicitly).
DEFAULT_RULE_MODULES = (
    "repro.analysis.rules.locks",
    "repro.analysis.rules.determinism",
    "repro.analysis.rules.wire_compat",
    "repro.analysis.rules.boundaries",
    "repro.analysis.rules.telemetry_naming",
    "repro.analysis.rules.lifecycle",
)

#: Ordered severities (most severe first) used for sorting/reporting.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``symbol`` names the enclosing context (``Class.method`` or a
    constant name) when the rule can supply one; it participates in the
    baseline fingerprint so two violations with identical messages in
    different methods stay distinguishable.
    """

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    severity: str = "error"
    symbol: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}: {self.severity!r}"
            )

    @property
    def fingerprint(self) -> str:
        """Stable, line-independent identity used by the baseline file.

        Line numbers drift whenever code above a finding moves, so they
        are deliberately excluded — identity is (rule, file, symbol,
        message).  Identical findings share a fingerprint; the baseline
        stores per-fingerprint counts to cope.
        """
        payload = "\x1f".join(
            (self.rule, self.path, self.symbol, self.message)
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def format(self) -> str:
        where = f"{self.path}:{self.line}"
        prefix = f"{where}: [{self.rule}] {self.severity}:"
        return f"{prefix} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


class SourceFile:
    """One parsed source file plus its suppression directives.

    Suppression comments are extracted with :mod:`tokenize` (not a
    regex over raw lines) so a string literal that merely *contains*
    ``# repro: ...-ok`` can never silence a finding.
    """

    def __init__(self, path: str, source: str):
        self.path = path  # repo-relative, forward slashes
        self.source = source
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_error = exc
        #: line -> set of suppression tokens active on that line.
        self.suppressions: Dict[int, Set[str]] = {}
        self._collect_suppressions()

    def _collect_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline
            )
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                text = tok.string.lstrip("#").strip()
                if not text.startswith("repro:"):
                    continue
                body = text[len("repro:"):].strip()
                for part in body.split(","):
                    part = part.strip()
                    if part.endswith("-ok") and len(part) > 3:
                        self.suppressions.setdefault(
                            tok.start[0], set()
                        ).add(part[: -len("-ok")])
        except (tokenize.TokenError, SyntaxError):
            pass  # unparseable file already reported via parse_error

    def suppressed(self, line: int, token: str) -> bool:
        return token in self.suppressions.get(line, set())


class Project:
    """A set of parsed source files rooted at the repo checkout."""

    def __init__(self, root: Path, files: Sequence[SourceFile]):
        self.root = Path(root)
        self.files = list(files)
        self._by_path = {f.path: f for f in self.files}

    @classmethod
    def load(
        cls, root: Path, paths: Iterable[Path]
    ) -> "Project":
        root = Path(root).resolve()
        files = []
        for path in sorted(set(Path(p).resolve() for p in paths)):
            rel = path.relative_to(root).as_posix()
            files.append(SourceFile(rel, path.read_text(encoding="utf-8")))
        return cls(root, files)

    def get(self, path: str) -> Optional[SourceFile]:
        return self._by_path.get(path)


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`id` (kebab-case, unique), a human
    :attr:`description`, and :attr:`suppression` — the comment token
    that silences the rule (``# repro: <suppression>-ok``, defaulting
    to the rule id).  Implement :meth:`check_file` for per-file passes
    and/or :meth:`check_project` for cross-file invariants; either may
    be left as the default no-op.
    """

    id: str = ""
    description: str = ""
    severity: str = "error"
    #: Suppression comment token; ``None`` falls back to :attr:`id`.
    suppression: Optional[str] = None

    @property
    def suppression_token(self) -> str:
        return self.suppression or self.id

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


def load_rules(
    modules: Sequence[str] = DEFAULT_RULE_MODULES,
) -> List[Rule]:
    """Import ``modules`` and instantiate every concrete Rule subclass.

    A module contributes each of its own (not re-exported) subclasses of
    :class:`Rule` with a non-empty ``id``.  Duplicate rule ids across
    modules are an error — silent shadowing would make a rule appear to
    run while another's findings vanish.
    """
    rules: List[Rule] = []
    seen: Dict[str, str] = {}
    for module_name in modules:
        module = importlib.import_module(module_name)
        for _, obj in sorted(vars(module).items()):
            if (
                inspect.isclass(obj)
                and issubclass(obj, Rule)
                and obj is not Rule
                and obj.__module__ == module.__name__
                and obj.id
            ):
                if obj.id in seen:
                    raise ValueError(
                        f"duplicate rule id {obj.id!r}: defined in both "
                        f"{seen[obj.id]} and {module_name}"
                    )
                seen[obj.id] = module_name
                rules.append(obj())
    return rules


def _statement_lines(source: SourceFile) -> Dict[int, int]:
    """Map every line of a multi-line statement to its first line.

    Lets a suppression comment on the *first* line of a statement cover
    findings reported on its continuation lines and vice versa.
    """
    mapping: Dict[int, int] = {}
    if source.tree is None:
        return mapping
    for node in ast.walk(source.tree):
        if isinstance(node, ast.stmt) and hasattr(node, "end_lineno"):
            for line in range(node.lineno, (node.end_lineno or node.lineno) + 1):
                mapping.setdefault(line, node.lineno)
    return mapping


def run_project(
    project: Project, rules: Sequence[Rule]
) -> List[Finding]:
    """Run every rule over the project; return sorted, unsuppressed findings.

    Files that fail to parse yield a single ``parse-error`` finding
    (rules never see them).  A suppression comment counts if it sits on
    the finding's line or on the first line of the statement containing
    it.
    """
    findings: List[Finding] = []
    stmt_lines: Dict[str, Dict[int, int]] = {}
    for source in project.files:
        if source.parse_error is not None:
            findings.append(
                Finding(
                    rule="parse-error",
                    path=source.path,
                    line=source.parse_error.lineno or 1,
                    message=f"file does not parse: {source.parse_error.msg}",
                )
            )
            continue
        stmt_lines[source.path] = _statement_lines(source)
        for rule in rules:
            findings.extend(rule.check_file(source))
    for rule in rules:
        findings.extend(rule.check_project(project))

    tokens = {rule.id: rule.suppression_token for rule in rules}
    kept = []
    for finding in findings:
        source = project.get(finding.path)
        token = tokens.get(finding.rule, finding.rule)
        if source is not None:
            lines = {finding.line}
            first = stmt_lines.get(finding.path, {}).get(finding.line)
            if first is not None:
                lines.add(first)
            if any(source.suppressed(line, token) for line in lines):
                continue
        kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return kept
