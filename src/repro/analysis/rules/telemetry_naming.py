"""Telemetry-naming rule: one metric namespace, machine-checked.

Every instrument the stack registers goes through
``telemetry.counter/gauge/histogram(name, ...)`` (or the registry
directly).  Dashboards, the Prometheus scrape step, and
``check_bench``-style tooling key on those names, so the rule enforces
the conventions the README documents:

* names match ``respect_[a-z0-9_]+`` — one namespace, lowercase;
* counters end in ``_total`` (Prometheus counter convention);
* histograms end in a unit suffix: ``_seconds`` or ``_bytes``;
* gauges carry *no* ``_total`` suffix (that suffix promises a counter);
* a name is registered as exactly one instrument kind project-wide
  (the registry raises at runtime; the rule fails at push time);
* **label-set consistency**: every call site of one name that passes
  explicit labels must pass the *same* label keys — a series with
  labels ``{shard}`` here and ``{tier}`` there cannot be aggregated.
  Sites passing no labels are exempt: layer stamping via
  ``Telemetry.child(**labels)`` adds labels the call site cannot see.

Call sites with a non-literal name are flagged (the contract cannot be
checked, and every current instrument is a literal) — *except* pure
delegation, where the name expression is a parameter of the enclosing
function forwarded verbatim (the ``Telemetry`` facade's
``counter(self, name, ...)`` → ``self.registry.counter(name, ...)``):
the real registration site is the caller, which the rule checks
directly.  The escape hatch is ``# repro: metric-name-ok``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.core import Finding, Project, Rule, SourceFile

__all__ = ["TelemetryNamingRule"]

NAME_PATTERN = re.compile(r"^respect_[a-z0-9_]+$")

_INSTRUMENT_METHODS = ("counter", "gauge", "histogram")

#: Keyword arguments of the instrument factories that are not labels.
_NON_LABEL_KWARGS = {"help", "buckets"}

_HISTOGRAM_UNITS = ("_seconds", "_bytes")


def _walk_with_params(node: ast.AST, params: frozenset):
    """Yield ``(node, enclosing-function-parameter-names)`` pairs."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        a = node.args
        params = frozenset(
            arg.arg
            for arg in (
                list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)
            )
        ) | frozenset(
            arg.arg for arg in (a.vararg, a.kwarg) if arg is not None
        )
    yield node, params
    for child in ast.iter_child_nodes(node):
        yield from _walk_with_params(child, params)


class TelemetryNamingRule(Rule):
    id = "telemetry-naming"
    suppression = "metric-name"
    description = (
        "registry instrument names must match respect_[a-z0-9_]+ with "
        "kind-appropriate suffixes and consistent label sets per name"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        # name -> list of (kind, label-keys, path, line)
        sites: Dict[str, List[Tuple[str, Tuple[str, ...], str, int]]] = {}
        for source in project.files:
            if source.tree is None:
                continue
            for node, params in _walk_with_params(source.tree, frozenset()):
                call = self._instrument_call(node)
                if call is None:
                    continue
                kind, name_node = call
                if not (
                    isinstance(name_node, ast.Constant)
                    and isinstance(name_node.value, str)
                ):
                    if (
                        isinstance(name_node, ast.Name)
                        and name_node.id in params
                    ):
                        # Forwarding a parameter is delegation, not a
                        # registration site; callers are checked.
                        continue
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=source.path,
                            line=node.lineno,
                            severity="warning",
                            message=(
                                f"non-literal {kind} name cannot be "
                                "checked against the respect_* naming "
                                "contract; use a literal (or annotate "
                                "'# repro: metric-name-ok')"
                            ),
                        )
                    )
                    continue
                name = name_node.value
                labels = tuple(
                    sorted(
                        keyword.arg
                        for keyword in node.keywords
                        if keyword.arg is not None
                        and keyword.arg not in _NON_LABEL_KWARGS
                    )
                )
                sites.setdefault(name, []).append(
                    (kind, labels, source.path, node.lineno)
                )
                findings.extend(
                    self._name_findings(kind, name, source.path, node.lineno)
                )
        findings.extend(self._consistency_findings(sites))
        return findings

    # ------------------------------------------------------------------
    @staticmethod
    def _instrument_call(node: ast.AST):
        """``(kind, name_arg)`` when node is an instrument registration."""
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _INSTRUMENT_METHODS
            and node.args
        ):
            return None
        # ``time.perf_counter()`` never takes args, but keep the
        # receiver check tight anyway: a first *positional* argument
        # that could be a metric name (string or expression).
        return node.func.attr, node.args[0]

    def _name_findings(
        self, kind: str, name: str, path: str, line: int
    ) -> Iterable[Finding]:
        def finding(message: str) -> Finding:
            return Finding(
                rule=self.id,
                path=path,
                line=line,
                symbol=name,
                message=message,
            )

        if not NAME_PATTERN.match(name):
            yield finding(
                f"{kind} name {name!r} violates the metric namespace "
                "(must match respect_[a-z0-9_]+)"
            )
            return
        if kind == "counter" and not name.endswith("_total"):
            yield finding(
                f"counter {name!r} must end in '_total' (Prometheus "
                "counter convention)"
            )
        if kind == "histogram" and not name.endswith(_HISTOGRAM_UNITS):
            yield finding(
                f"histogram {name!r} must end in a unit suffix "
                f"({' or '.join(repr(u) for u in _HISTOGRAM_UNITS)})"
            )
        if kind == "gauge" and name.endswith("_total"):
            yield finding(
                f"gauge {name!r} must not end in '_total' — that suffix "
                "promises a monotonic counter"
            )

    def _consistency_findings(
        self,
        sites: Dict[str, List[Tuple[str, Tuple[str, ...], str, int]]],
    ) -> Iterable[Finding]:
        findings = []
        for name, entries in sorted(sites.items()):
            kinds = sorted({kind for kind, _, _, _ in entries})
            if len(kinds) > 1:
                for kind, _, path, line in entries:
                    if kind != kinds[0]:
                        findings.append(
                            Finding(
                                rule=self.id,
                                path=path,
                                line=line,
                                symbol=name,
                                message=(
                                    f"{name!r} is registered as both "
                                    f"{' and '.join(kinds)}; the registry "
                                    "will refuse the second kind at "
                                    "runtime"
                                ),
                            )
                        )
            labeled = [entry for entry in entries if entry[1]]
            label_sets: Set[Tuple[str, ...]] = {
                labels for _, labels, _, _ in labeled
            }
            if len(label_sets) > 1:
                canonical = sorted(label_sets)[0]
                for kind, labels, path, line in labeled:
                    if labels != canonical:
                        findings.append(
                            Finding(
                                rule=self.id,
                                path=path,
                                line=line,
                                symbol=name,
                                message=(
                                    f"{name!r} is registered with label "
                                    f"keys {list(labels)} here but "
                                    f"{list(canonical)} elsewhere; one "
                                    "name must keep one label schema"
                                ),
                            )
                        )
        return findings
