"""Exception-boundary rule: public surfaces raise the repro hierarchy.

``submit``/``asubmit``, the schedule store, and the decode-worker pool
promise callers that every library failure derives from
:class:`repro.errors.RespectError` — retry loops, admission backoff and
the degrade ladder all catch on that contract (``except RespectError``)
and must never have to enumerate stray ``RuntimeError``\\ s.  The rule
walks every ``raise`` in the boundary modules and flags raises of
builtin exception classes.

What it allows:

* anything imported from (or defined in) :mod:`repro.errors` — the
  hierarchy itself is parsed, not hardcoded, so new error classes are
  picked up automatically;
* exception classes *defined in the same module* that subclass a
  hierarchy member;
* re-raises (bare ``raise``) and raising a caught variable — those
  propagate an exception someone else typed;
* raises that an *enclosing* ``try`` in the same file demonstrably
  catches (e.g. the store's snapshot-validation ``ValueError``\\ s,
  consumed three lines down by ``except (…, ValueError, …)``) — local
  control flow never crosses the surface;
* ``NotImplementedError`` (abstract hooks), ``StopIteration`` /
  ``StopAsyncIteration`` (protocol), ``KeyboardInterrupt`` /
  ``SystemExit`` (control flow, not library failure);
* names the rule cannot resolve (calls computing the class, attribute
  chains into other modules) — unresolvable is not evidence.

Intentional builtin raises (e.g. ``TypeError`` from a dunder that the
*language* specifies must raise it) take ``# repro: boundary-ok``.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, Project, Rule, SourceFile

__all__ = ["ExceptionBoundaryRule"]

#: Repo-relative prefixes whose raises cross a public serving surface.
DEFAULT_BOUNDARY_PREFIXES = (
    "src/repro/service/",
    "src/repro/portfolio/",
    "src/repro/online/",
    "src/repro/cluster/",
)

DEFAULT_ERRORS_PATH = "src/repro/errors.py"

#: Builtins that are legitimately raised from anywhere.
_ALLOWED_BUILTINS = {
    "NotImplementedError",
    "StopIteration",
    "StopAsyncIteration",
    "KeyboardInterrupt",
    "SystemExit",
    "GeneratorExit",
}

_BUILTIN_EXCEPTIONS = {
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
}


def _handler_type_names(handler: ast.ExceptHandler) -> List[str]:
    """Bare class names an ``except`` clause catches (unresolvable
    expressions are skipped; ``except:`` catches everything)."""
    if handler.type is None:
        return ["BaseException"]
    exprs = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return [e.id for e in exprs if isinstance(e, ast.Name)]


def _locally_handled(name: str, caught: Tuple[str, ...]) -> bool:
    """True when an enclosing handler catches builtin class ``name``,
    accounting for real subclass relationships (``except Exception``
    covers ``ValueError``)."""
    raised = getattr(builtins, name, None)
    if not isinstance(raised, type):
        return name in caught
    for handler_name in caught:
        handler_cls = getattr(builtins, handler_name, None)
        if isinstance(handler_cls, type) and issubclass(raised, handler_cls):
            return True
    return False


class ExceptionBoundaryRule(Rule):
    id = "exception-boundary"
    suppression = "boundary"
    description = (
        "exceptions raised across service/store/worker public surfaces "
        "must derive from the repro.errors hierarchy"
    )

    def __init__(
        self,
        boundary_prefixes: Sequence[str] = DEFAULT_BOUNDARY_PREFIXES,
        errors_path: str = DEFAULT_ERRORS_PATH,
    ):
        self.boundary_prefixes = tuple(boundary_prefixes)
        self.errors_path = errors_path

    def in_boundary(self, path: str) -> bool:
        return any(
            path == prefix or (prefix.endswith("/") and path.startswith(prefix))
            for prefix in self.boundary_prefixes
        )

    def check_project(self, project: Project) -> Iterable[Finding]:
        hierarchy = self._hierarchy_names(project)
        findings: List[Finding] = []
        for source in project.files:
            if source.tree is None or not self.in_boundary(source.path):
                continue
            findings.extend(self._check_file(source, hierarchy))
        return findings

    # ------------------------------------------------------------------
    def _hierarchy_names(self, project: Project) -> Set[str]:
        """Class names of the repro.errors hierarchy (parsed, not frozen)."""
        names: Set[str] = set()
        source = project.get(self.errors_path)
        if source is None or source.tree is None:
            # Outside a full-repo run (fixture trees) the hierarchy may
            # be absent; fall back to the canonical root name so the
            # rule still distinguishes builtins from library errors.
            return {"RespectError"}
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                names.add(node.name)
        return names

    def _check_file(
        self, source: SourceFile, hierarchy: Set[str]
    ) -> Iterable[Finding]:
        local_ok = set(hierarchy)
        # Exception classes defined in this module count when they
        # (transitively) subclass a hierarchy member.
        changed = True
        local_classes = [
            node
            for node in ast.walk(source.tree)
            if isinstance(node, ast.ClassDef)
        ]
        while changed:
            changed = False
            for cls in local_classes:
                if cls.name in local_ok:
                    continue
                bases = {
                    base.id
                    for base in cls.bases
                    if isinstance(base, ast.Name)
                }
                if bases & local_ok:
                    local_ok.add(cls.name)
                    changed = True

        findings: List[Finding] = []
        self._walk_raises(source, source.tree, local_ok, (), findings)
        return findings

    def _walk_raises(
        self,
        source: SourceFile,
        node: ast.AST,
        local_ok: Set[str],
        caught: Tuple[str, ...],
        findings: List[Finding],
    ) -> None:
        """Recursive walk tracking which exception names enclosing
        ``try`` bodies catch — a raise consumed locally never crosses
        the public surface."""
        if isinstance(node, ast.Try):
            handler_names: List[str] = []
            for handler in node.handlers:
                handler_names.extend(_handler_type_names(handler))
            inner = caught + tuple(handler_names)
            for stmt in node.body:
                self._walk_raises(source, stmt, local_ok, inner, findings)
            # Handlers, else and finally run outside this try's cover.
            for handler in node.handlers:
                for stmt in handler.body:
                    self._walk_raises(
                        source, stmt, local_ok, caught, findings
                    )
            for stmt in node.orelse + node.finalbody:
                self._walk_raises(source, stmt, local_ok, caught, findings)
            return
        if isinstance(node, ast.Raise) and node.exc is not None:
            name = self._raised_class_name(node.exc)
            if (
                name is not None
                and name not in local_ok
                and name in _BUILTIN_EXCEPTIONS
                and name not in _ALLOWED_BUILTINS
                and not _locally_handled(name, caught)
            ):
                findings.append(
                    Finding(
                        rule=self.id,
                        path=source.path,
                        line=node.lineno,
                        symbol=name,
                        message=(
                            f"'{name}' raised across a public serving "
                            "surface; use (or add) a repro.errors "
                            "subclass so 'except RespectError' keeps "
                            "its contract"
                        ),
                    )
                )
        for child in ast.iter_child_nodes(node):
            self._walk_raises(source, child, local_ok, caught, findings)

    @staticmethod
    def _raised_class_name(node: ast.expr) -> Optional[str]:
        """Resolve ``raise X(...)`` / ``raise X`` to a bare class name.

        Variables holding caught exceptions are conventionally
        lowercase; class names are CamelCase, so a lowercase bare name
        is treated as a re-raise, not a construction.
        """
        if isinstance(node, ast.Call):
            node = node.func
        if isinstance(node, ast.Name) and node.id[:1].isupper():
            return node.id
        return None
