"""Determinism rule: no ambient entropy inside the deterministic zones.

Bit-identical replay is a load-bearing contract here — cache keys,
store round-trips, fleet-DES replays and promotion gates all assert it.
Everything under the *deterministic zones* must derive its randomness
from an explicitly seeded generator and its notion of time from the
simulated/virtual clock, never the host:

* ``scheduling/`` — every solver must be a pure function of
  ``(graph, num_stages, options, seed)``;
* ``graphs/`` — samplers/families are replayed from spawned seeds;
* ``cluster/simulate.py`` — the fleet DES is compared replay-to-replay;
* ``portfolio/objectives.py`` — objective vectors feed Pareto fronts
  that tests pin bit-identically.

Three violation classes:

1. **global-state RNG** — ``random.*`` module calls, unseeded
   ``random.Random()`` / ``np.random.default_rng()`` /
   ``np.random.RandomState()``, and any legacy ``np.random.*``
   global-state call (``np.random.seed`` included: mutating the global
   stream from a zone leaks nondeterminism into every other caller);
2. **wall-clock reads** — ``time.time``/``monotonic``/``perf_counter``
   (+ ``_ns`` variants), ``time.localtime``/``gmtime``/``ctime``,
   ``datetime.now``/``utcnow``/``today``;
3. **unordered iteration** — ``for``/comprehension iteration over a
   value statically known to be a ``set``/``frozenset`` (literal,
   comprehension, constructor call, or a local assigned one), unless
   the iteration feeds an order-insensitive reduction (``sorted``,
   ``sum``, ``min``, ``max``, ``len``, ``any``, ``all``, ``set``,
   ``frozenset``) — set order varies across processes under hash
   randomization, so it must never reach a returned value.

Escape hatch: ``# repro: nondeterministic-ok`` on the offending line
(cooperative-cancellation deadlines measured against the host clock are
the legitimate case).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, Rule, SourceFile

__all__ = ["DeterminismRule"]

#: Path prefixes / exact files (repo-relative under ``src/repro``) that
#: make up the deterministic zone.
DEFAULT_ZONES = (
    "src/repro/scheduling/",
    "src/repro/graphs/",
    "src/repro/cluster/simulate.py",
    "src/repro/portfolio/objectives.py",
)

_WALL_CLOCK_TIME_FNS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "localtime", "gmtime", "ctime",
}
_WALL_CLOCK_DATETIME_FNS = {"now", "utcnow", "today"}

#: ``np.random`` attributes that are deterministic *when called with a
#: seed argument* (constructors of explicit generators).
_SEEDED_NP_CONSTRUCTORS = {"default_rng", "RandomState", "SeedSequence", "Generator"}

#: Call receivers that make an iteration order-insensitive.
_ORDER_INSENSITIVE_SINKS = {
    "sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset",
}


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for a pure attribute chain on a Name, else ``""``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _Imports:
    """Aliases under which the hazardous modules/functions are visible."""

    def __init__(self, tree: ast.AST):
        self.random_mods: Set[str] = set()
        self.numpy_mods: Set[str] = set()
        #: names aliasing ``numpy.random`` itself (``from numpy import
        #: random as npr`` / ``import numpy.random as npr``).
        self.numpy_random_mods: Set[str] = set()
        self.time_mods: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        #: local name -> function it aliases, for ``from x import y``.
        self.random_funcs: Set[str] = set()
        self.time_funcs: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_mods.add(local)
                    elif alias.name == "numpy":
                        self.numpy_mods.add(local)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self.numpy_random_mods.add(local)
                        else:
                            self.numpy_mods.add("numpy")
                    elif alias.name == "time":
                        self.time_mods.add(local)
                    elif alias.name == "datetime":
                        self.datetime_classes.add(f"{local}.datetime")
                        self.datetime_classes.add(f"{local}.date")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    if node.module == "random":
                        self.random_funcs.add(local)
                    elif node.module == "time":
                        if alias.name in _WALL_CLOCK_TIME_FNS:
                            self.time_funcs.add(local)
                    elif node.module == "datetime":
                        if alias.name in ("datetime", "date"):
                            self.datetime_classes.add(local)
                    elif node.module == "numpy" and alias.name == "random":
                        self.numpy_random_mods.add(local)


class DeterminismRule(Rule):
    id = "determinism"
    suppression = "nondeterministic"
    description = (
        "deterministic zones must not read ambient entropy: global-state "
        "RNGs, wall clocks, or unordered set iteration feeding results"
    )

    def __init__(self, zones: Sequence[str] = DEFAULT_ZONES):
        self.zones = tuple(zones)

    def in_zone(self, path: str) -> bool:
        return any(
            path == zone or (zone.endswith("/") and path.startswith(zone))
            for zone in self.zones
        )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        if not self.in_zone(source.path):
            return ()
        imports = _Imports(source.tree)
        findings: List[Finding] = []
        findings.extend(self._check_calls(source, imports))
        findings.extend(self._check_set_iteration(source))
        return findings

    # -- RNG + wall clock ----------------------------------------------
    def _check_calls(
        self, source: SourceFile, imports: _Imports
    ) -> Iterable[Finding]:
        findings = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._call_violation(node, imports)
            if message:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=source.path,
                        line=node.lineno,
                        message=message,
                    )
                )
        return findings

    def _call_violation(
        self, node: ast.Call, imports: _Imports
    ) -> Optional[str]:
        func = node.func
        dotted = _dotted(func)
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")

        # from random import shuffle; shuffle(...)
        if not rest and head in imports.random_funcs:
            return (
                f"'{head}' drives the process-global random stream; "
                "thread an explicitly seeded Generator through instead"
            )
        # from time import time; time()
        if not rest and head in imports.time_funcs:
            return (
                f"'{head}()' reads the host clock inside a deterministic "
                "zone; take timestamps from the simulated clock or a "
                "caller-supplied parameter"
            )
        if head in imports.random_mods and rest:
            if rest == "Random" and node.args:
                return None  # seeded instance
            if rest == "SystemRandom":
                return "'random.SystemRandom' is entropy by definition"
            return (
                f"'{dotted}' uses the process-global random stream "
                "(or an unseeded instance); construct a seeded "
                "random.Random/np Generator explicitly"
            )
        np_attr = None
        if head in imports.numpy_mods and rest.startswith("random."):
            np_attr = rest[len("random."):]
        elif head in imports.numpy_random_mods and rest and "." not in rest:
            np_attr = rest
        if np_attr:
            if np_attr in _SEEDED_NP_CONSTRUCTORS and node.args:
                return None
            if np_attr in _SEEDED_NP_CONSTRUCTORS:
                return (
                    f"unseeded 'np.random.{np_attr}()' draws its seed "
                    "from OS entropy; pass an explicit seed"
                )
            return (
                f"'np.random.{np_attr}' touches numpy's global RNG "
                "state; use a seeded np.random.Generator"
            )
        if head in imports.time_mods and rest in _WALL_CLOCK_TIME_FNS:
            return (
                f"'{dotted}()' reads the host clock inside a deterministic "
                "zone; take timestamps from the simulated clock or a "
                "caller-supplied parameter"
            )
        for cls in imports.datetime_classes:
            if (
                dotted.startswith(cls + ".")
                and dotted[len(cls) + 1:] in _WALL_CLOCK_DATETIME_FNS
            ):
                return (
                    f"'{dotted}()' reads the wall clock inside a "
                    "deterministic zone"
                )
        return None

    # -- unordered iteration -------------------------------------------
    def _check_set_iteration(
        self, source: SourceFile
    ) -> Iterable[Finding]:
        findings = []
        functions = [
            node
            for node in ast.walk(source.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for function in functions:
            findings.extend(self._check_function_sets(source, function))
        return findings

    def _check_function_sets(
        self, source: SourceFile, function: ast.AST
    ) -> Iterable[Finding]:
        # Locals assigned a set-valued expression in this function body
        # (shallow, flow-insensitive; reassignment to a non-set clears).
        set_locals: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    if self._is_set_expr(node.value, set_locals):
                        set_locals.add(target.id)
                    else:
                        set_locals.discard(target.id)

        sinks = self._order_insensitive_iters(function)
        findings = []
        for node in ast.walk(function):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if id(it) in sinks:
                    continue
                if self._is_set_expr(it, set_locals):
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=source.path,
                            line=it.lineno,
                            message=(
                                "iteration over a set has "
                                "hash-randomized order inside a "
                                "deterministic zone; wrap it in "
                                "sorted(...) or keep an ordered "
                                "container"
                            ),
                        )
                    )
        return findings

    @staticmethod
    def _is_set_expr(node: ast.expr, set_locals: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name):
            return node.id in set_locals
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return DeterminismRule._is_set_expr(
                node.left, set_locals
            ) and DeterminismRule._is_set_expr(node.right, set_locals)
        return False

    @staticmethod
    def _order_insensitive_iters(function: ast.AST) -> Set[int]:
        """ids of iterator expressions feeding order-insensitive sinks.

        Covers ``sorted({...})`` directly and ``sorted(x for x in {...})``
        / ``min(len(s) for s in sets)`` one comprehension level down.
        """
        sinks: Set[int] = set()
        for node in ast.walk(function):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_INSENSITIVE_SINKS
            ):
                continue
            for arg in node.args:
                sinks.add(id(arg))
                if isinstance(
                    arg,
                    (ast.GeneratorExp, ast.ListComp, ast.SetComp),
                ):
                    for gen in arg.generators:
                        sinks.add(id(gen.iter))
        return sinks
