"""Wire-compat rule: the framed format only ever grows.

``repro/service/wire.py`` frames cross-process payloads *and* the
persistent schedule store's segment files, so its ``KIND_*`` codes and
version tuple are an on-disk contract: a store directory written last
month must still replay today.  The frozen registry below is the
contract as of the last deliberate revision; against it the rule fails
when a kind is

* **removed** — old segment frames would stop decoding;
* **renumbered** — old frames would silently decode as the wrong kind;
* **reused** — two kinds sharing a value makes frames ambiguous;

and when version handling regresses:

* a version in the frozen support set drops out of
  ``SUPPORTED_WIRE_VERSIONS`` (old frames rejected), or
* ``WIRE_VERSION`` itself is not in ``SUPPORTED_WIRE_VERSIONS`` (the
  build could not decode its own frames).

It also requires every ``KIND_*`` constant to appear in the
``_KIND_NAMES`` map so error messages keep naming kinds.

*Adding* a kind or a version is always fine — that is the one evolution
the format promises.  After a deliberate, migration-reviewed revision,
update :data:`FROZEN_KINDS` / :data:`FROZEN_SUPPORTED_VERSIONS` in the
same commit; there is intentionally no suppression comment for this
rule (per-line escapes make no sense for a file-level contract).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.core import Finding, Project, Rule

__all__ = ["WireCompatRule"]

#: The frozen wire contract (PR 6 introduced kinds 1-5; PR 7 added the
#: store kinds 6-7; PR 8 bumped the version to 2 for trace fields).
FROZEN_KINDS: Dict[str, int] = {
    "KIND_GRAPH": 1,
    "KIND_DECODE_REQUEST": 2,
    "KIND_DECODE_RESPONSE": 3,
    "KIND_SCHEDULE": 4,
    "KIND_OPTIONS": 5,
    "KIND_STORE_ENTRY": 6,
    "KIND_STORE_TOMBSTONE": 7,
}

FROZEN_SUPPORTED_VERSIONS: Tuple[int, ...] = (1, 2)

DEFAULT_WIRE_PATH = "src/repro/service/wire.py"


class WireCompatRule(Rule):
    id = "wire-compat"
    description = (
        "wire-format kind codes and supported versions may only be "
        "added, never reused, renumbered, or removed"
    )

    def __init__(
        self,
        wire_path: str = DEFAULT_WIRE_PATH,
        frozen_kinds: Optional[Dict[str, int]] = None,
        frozen_versions: Optional[Tuple[int, ...]] = None,
    ):
        self.wire_path = wire_path
        self.frozen_kinds = dict(
            FROZEN_KINDS if frozen_kinds is None else frozen_kinds
        )
        self.frozen_versions = tuple(
            FROZEN_SUPPORTED_VERSIONS
            if frozen_versions is None
            else frozen_versions
        )

    def check_project(self, project: Project) -> Iterable[Finding]:
        source = project.get(self.wire_path)
        if source is None:
            return [
                Finding(
                    rule=self.id,
                    path=self.wire_path,
                    line=1,
                    message=(
                        "wire module is missing from the project — the "
                        "on-disk format contract cannot be checked"
                    ),
                )
            ]
        if source.tree is None:
            return ()  # parse-error finding already emitted

        kinds: Dict[str, Tuple[int, int]] = {}  # name -> (value, line)
        wire_version: Optional[Tuple[int, int]] = None
        supported: Optional[Tuple[Tuple[int, ...], int]] = None
        kind_name_keys: List[str] = []
        for node in source.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id.startswith("KIND_"):
                value = _int_constant(node.value)
                if value is None:
                    kinds[target.id] = (-1, node.lineno)
                else:
                    kinds[target.id] = (value, node.lineno)
            elif target.id == "WIRE_VERSION":
                value = _int_constant(node.value)
                if value is not None:
                    wire_version = (value, node.lineno)
            elif target.id == "SUPPORTED_WIRE_VERSIONS":
                versions = _int_tuple(node.value)
                if versions is not None:
                    supported = (versions, node.lineno)
            elif target.id == "_KIND_NAMES" and isinstance(
                node.value, ast.Dict
            ):
                for key in node.value.keys:
                    if isinstance(key, ast.Name):
                        kind_name_keys.append(key.id)

        findings: List[Finding] = []

        def fail(line: int, symbol: str, message: str) -> None:
            findings.append(
                Finding(
                    rule=self.id,
                    path=self.wire_path,
                    line=line,
                    symbol=symbol,
                    message=message,
                )
            )

        for name, frozen_value in sorted(self.frozen_kinds.items()):
            if name not in kinds:
                fail(
                    1,
                    name,
                    f"frozen wire kind {name} (= {frozen_value}) was "
                    "removed; frames already on disk reference it",
                )
            elif kinds[name][0] != frozen_value:
                fail(
                    kinds[name][1],
                    name,
                    f"frozen wire kind {name} was renumbered "
                    f"{frozen_value} -> {kinds[name][0]}; frames already "
                    "on disk would decode as the wrong kind",
                )

        by_value: Dict[int, List[str]] = {}
        for name, (value, _) in kinds.items():
            if not isinstance(value, int) or value < 0:
                fail(
                    kinds[name][1],
                    name,
                    f"{name} must be a literal non-negative int",
                )
                continue
            by_value.setdefault(value, []).append(name)
        for value, names in sorted(by_value.items()):
            if len(names) > 1:
                fail(
                    min(kinds[name][1] for name in names),
                    names[0],
                    f"wire kind value {value} is reused by "
                    f"{sorted(names)}; frames would be ambiguous",
                )

        for name in sorted(kinds):
            if name not in kind_name_keys:
                fail(
                    kinds[name][1],
                    name,
                    f"{name} is missing from _KIND_NAMES; decode errors "
                    "would stop naming the kind",
                )

        if supported is None:
            fail(
                1,
                "SUPPORTED_WIRE_VERSIONS",
                "SUPPORTED_WIRE_VERSIONS must be a literal tuple of ints",
            )
        else:
            versions, line = supported
            for frozen in self.frozen_versions:
                if frozen not in versions:
                    fail(
                        line,
                        "SUPPORTED_WIRE_VERSIONS",
                        f"wire version {frozen} was dropped from "
                        "SUPPORTED_WIRE_VERSIONS; frames already on disk "
                        "would be rejected",
                    )
            if wire_version is not None and wire_version[0] not in versions:
                fail(
                    wire_version[1],
                    "WIRE_VERSION",
                    f"WIRE_VERSION {wire_version[0]} is not in "
                    "SUPPORTED_WIRE_VERSIONS; the build could not decode "
                    "its own frames",
                )
        if wire_version is None:
            fail(
                1,
                "WIRE_VERSION",
                "WIRE_VERSION must be a literal int",
            )
        return findings


def _int_constant(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(node.value, bool):
        return node.value
    return None


def _int_tuple(node: ast.expr) -> Optional[Tuple[int, ...]]:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values = []
    for element in node.elts:
        value = _int_constant(element)
        if value is None:
            return None
        values.append(value)
    return tuple(values)
