"""Repo-specific lint rules.

Each module defines one or more :class:`repro.analysis.core.Rule`
subclasses; :func:`repro.analysis.core.load_rules` discovers them from
:data:`repro.analysis.core.DEFAULT_RULE_MODULES`.  To add a rule, write
a module here, subclass ``Rule``, give it a unique ``id``, and append
the module path to ``DEFAULT_RULE_MODULES``.
"""
