"""Lock-discipline rule: guarded attributes stay guarded.

For every class that creates a ``threading.Lock``/``RLock`` in
``__init__``, the rule *infers* which instance attributes that lock
guards — any ``self.X`` assigned inside a ``with self.<lock>:`` block
in a regular method — and then flags every read or write of a guarded
attribute that happens outside all lock contexts.

What counts as "inside a lock context":

* lexically inside a ``with self.<lock>:`` block of the same function
  body — but **not** inside a nested ``def``/``lambda`` defined there:
  a callback closes over ``self`` and runs after the ``with`` exits,
  so its body is analyzed with the lock considered *released* (the
  "escape via callback" case);
* anywhere in a method whose name ends in ``_locked`` — the repo's
  existing convention for helpers documented as "caller holds the
  lock" (e.g. ``DegradeLadder._decayed_pressure_locked``).  The
  convention makes the contract grep-able and machine-checkable where
  a comment is neither.

``__init__`` and ``__del__`` are exempt: before ``__init__`` returns
the object is unshared, and ``__del__`` runs when no other thread can
hold a reference.  Intentional unlocked access (immutable-after-init
publication, monotonic reads for monitoring) takes a
``# repro: unlocked-ok`` comment on the access line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.core import Finding, Rule, SourceFile

__all__ = ["LockDisciplineRule"]

#: Constructors whose result makes an attribute a "lock" for this rule.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: Methods where unlocked access to guarded attributes is allowed.
_EXEMPT_METHODS = {"__init__", "__del__"}


def _is_lock_constructor(node: ast.expr) -> bool:
    """``threading.Lock()`` / ``Lock()`` / ``threading.RLock()`` …"""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES and isinstance(
            func.value, ast.Name
        ) and func.value.id in ("threading", "multiprocessing", "mp")
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _self_attr(node: ast.expr) -> str:
    """Attribute name when ``node`` is ``self.X``, else ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _with_locks(node: ast.With, lock_attrs: Set[str]) -> bool:
    """Does this ``with`` statement acquire any of the class's locks?"""
    for item in node.items:
        expr = item.context_expr
        if _self_attr(expr) in lock_attrs:
            return True
        # ``with self._lock.acquire_timeout(...)``-style wrappers.
        if isinstance(expr, ast.Call) and _self_attr(expr.func) in lock_attrs:
            return True
    return False


class _FunctionAccessWalker:
    """Walk one function body tracking whether a class lock is held.

    Yields ``(attr, line, writes, locked)`` for every ``self.X`` access.
    Nested function/lambda bodies are walked with ``locked`` reset to
    the function's *baseline* (False, unless the outer function is a
    ``*_locked`` helper) — a closure runs after the enclosing ``with``
    has exited.
    """

    def __init__(self, lock_attrs: Set[str], baseline_locked: bool):
        self.lock_attrs = lock_attrs
        self.accesses: List[Tuple[str, int, bool, bool]] = []
        self._baseline = baseline_locked

    def walk(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt, self._baseline)

    def _visit(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With) and _with_locks(
            node, self.lock_attrs
        ):
            for stmt in node.body:
                self._visit(stmt, True)
            # Context expressions themselves run before acquisition.
            for item in node.items:
                self._visit(item.context_expr, locked)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = _FunctionAccessWalker(self.lock_attrs, self._baseline)
            inner.walk(node.body)
            self.accesses.extend(inner.accesses)
            return
        if isinstance(node, ast.Lambda):
            inner = _FunctionAccessWalker(self.lock_attrs, self._baseline)
            inner._visit(node.body, self._baseline)
            self.accesses.extend(inner.accesses)
            return
        attr = _self_attr(node)
        if attr and attr not in self.lock_attrs:
            writes = isinstance(
                node.ctx, (ast.Store, ast.Del)  # type: ignore[attr-defined]
            )
            self.accesses.append((attr, node.lineno, writes, locked))
        for child in ast.iter_child_nodes(node):
            self._visit(child, locked)


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    suppression = "unlocked"
    description = (
        "attributes assigned under a class's lock must never be read or "
        "written outside a lock context (including callback escapes)"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    # ------------------------------------------------------------------
    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        methods = [
            item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs = self._find_lock_attrs(methods)
        if not lock_attrs:
            return ()

        # Pass 1: attributes assigned while a lock is held, in any
        # non-exempt method, are the lock-guarded set.
        guarded: Set[str] = set()
        per_method: Dict[str, List[Tuple[str, int, bool, bool]]] = {}
        for method in methods:
            walker = _FunctionAccessWalker(
                lock_attrs, method.name.endswith("_locked")
            )
            walker.walk(method.body)
            per_method[method.name] = walker.accesses
            if method.name in _EXEMPT_METHODS:
                continue
            for attr, _, writes, locked in walker.accesses:
                if writes and locked:
                    guarded.add(attr)
        if not guarded:
            return ()

        # Pass 2: every unlocked access to a guarded attribute outside
        # the exempt methods is a violation.
        findings = []
        for method in methods:
            if method.name in _EXEMPT_METHODS:
                continue
            for attr, line, writes, locked in per_method[method.name]:
                if attr in guarded and not locked:
                    verb = "written" if writes else "read"
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=source.path,
                            line=line,
                            symbol=f"{cls.name}.{method.name}",
                            message=(
                                f"'self.{attr}' is assigned under "
                                f"{self._lock_label(lock_attrs)} elsewhere in "
                                f"{cls.name} but {verb} here outside any "
                                "lock context (callbacks drop the lock); "
                                "hold the lock, rename the helper to "
                                "'*_locked', or annotate "
                                "'# repro: unlocked-ok'"
                            ),
                        )
                    )
        return findings

    @staticmethod
    def _lock_label(lock_attrs: Set[str]) -> str:
        names = ", ".join(f"'self.{name}'" for name in sorted(lock_attrs))
        return names if len(lock_attrs) == 1 else f"one of {names}"

    @staticmethod
    def _find_lock_attrs(methods: List[ast.FunctionDef]) -> Set[str]:
        lock_attrs: Set[str] = set()
        for method in methods:
            if method.name != "__init__":
                continue
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _is_lock_constructor(
                    node.value
                ):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr:
                            lock_attrs.add(attr)
        return lock_attrs
