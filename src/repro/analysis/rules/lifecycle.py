"""Resource-lifecycle rule: what ``__init__`` opens, the class can close.

A class that spawns a thread or process, creates an executor, or opens
a file/socket/pipe in ``__init__`` owns that resource for the object's
whole lifetime — and Python offers no reliable destructor (``__del__``
may run at interpreter shutdown with modules half-torn-down, or never).
Every such class must expose an explicit release path: ``close()``,
``shutdown()``, ``stop()``, ``join()``, or context-manager exit.

The rule flags resource construction in ``__init__`` when the class
defines none of those.  Creation in *other* methods is not flagged —
request-scoped threads (e.g. the degrade ladder's budgeted policy
probe) are bounded by their own joins/deadlines, and flagging them
would bury the signal.  A deliberately unowned resource (a daemon
thread handed off to its target, a file opened for the caller) takes
``# repro: lifecycle-ok`` on the creating line.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.analysis.core import Finding, Rule, SourceFile

__all__ = ["ResourceLifecycleRule"]

#: Method names accepted as a release path.
_RELEASE_METHODS = {"close", "shutdown", "stop", "join", "__exit__", "release"}

#: (constructor match, human label).  Attribute matches compare the
#: final attribute name; Name matches compare the bare call.
_RESOURCE_ATTRS = {
    "Thread": "thread",
    "Process": "process",
    "Timer": "timer thread",
    "ThreadPoolExecutor": "thread pool",
    "ProcessPoolExecutor": "process pool",
    "Pool": "worker pool",
    "Popen": "subprocess",
    "socket": "socket",
    "Pipe": "pipe pair",
    "Queue": None,  # plain queues are garbage-collectable; not flagged
}
_RESOURCE_NAMES = {
    "open": "file handle",
    "Thread": "thread",
    "Process": "process",
    "ThreadPoolExecutor": "thread pool",
    "ProcessPoolExecutor": "process pool",
    "Popen": "subprocess",
}


class ResourceLifecycleRule(Rule):
    id = "resource-lifecycle"
    suppression = "lifecycle"
    description = (
        "threads/processes/executors/files created in __init__ require "
        "a close()/shutdown()/stop()/join()/__exit__ release path"
    )

    def check_file(self, source: SourceFile) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        methods = {
            item.name
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if methods & _RELEASE_METHODS:
            return ()
        init = next(
            (
                item
                for item in cls.body
                if isinstance(item, ast.FunctionDef)
                and item.name == "__init__"
            ),
            None,
        )
        if init is None:
            return ()
        findings = []
        for node in ast.walk(init):
            resource = self._resource_label(node)
            if resource is None:
                continue
            findings.append(
                Finding(
                    rule=self.id,
                    path=source.path,
                    line=node.lineno,
                    symbol=cls.name,
                    message=(
                        f"{cls.name}.__init__ creates a {resource} but "
                        f"the class defines no release path "
                        f"({'/'.join(sorted(_RELEASE_METHODS))}); leaked "
                        "on every discarded instance"
                    ),
                )
            )
        return findings

    @staticmethod
    def _resource_label(node: ast.AST) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Attribute):
            label = _RESOURCE_ATTRS.get(func.attr)
            if label is not None or func.attr not in _RESOURCE_ATTRS:
                return label
            return None
        if isinstance(func, ast.Name):
            return _RESOURCE_NAMES.get(func.id)
        return None
