"""RESPECT — RL-based edge scheduling on pipelined Coral Edge TPUs.

A from-scratch reproduction of Yin et al., DAC 2023 (arXiv:2304.04716):
an LSTM pointer network trained on synthetic DAGs imitates an exact
(ILP) scheduler and partitions DNN computational graphs across
multi-stage pipelined Edge TPU systems at heuristic-level solving cost.

Quick start::

    from repro import build_model, quantize_graph, RespectScheduler, deploy

    graph = quantize_graph(build_model("ResNet50"))
    result = RespectScheduler().schedule(graph, num_stages=4)
    pipeline = deploy(graph, result.schedule)
    report = pipeline.simulate(num_inferences=1000)
    print(report.seconds_per_inference)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.embedding import EmbeddingConfig, build_encoder_queue, embed_graph
from repro.graphs import (
    ComputationalGraph,
    OpNode,
    SyntheticDAGSampler,
    asap_levels,
    graph_depth,
)
from repro.models import build_model, list_models, model_statistics
from repro.rl import PointerNetworkPolicy, RespectScheduler, load_pretrained_policy
from repro.scheduling import (
    BranchAndBoundScheduler,
    EdgeTpuCompilerProxy,
    IlpScheduler,
    ListScheduler,
    Schedule,
    ScheduleResult,
    pack_sequence,
    postprocess_schedule,
)
from repro.tpu import (
    EdgeTPUSpec,
    PipelinedTpuSystem,
    default_spec,
    deploy,
    quantize_graph,
)

__version__ = "1.0.0"

__all__ = [
    "BranchAndBoundScheduler",
    "ComputationalGraph",
    "EdgeTPUSpec",
    "EdgeTpuCompilerProxy",
    "EmbeddingConfig",
    "IlpScheduler",
    "ListScheduler",
    "OpNode",
    "PipelinedTpuSystem",
    "PointerNetworkPolicy",
    "RespectScheduler",
    "Schedule",
    "ScheduleResult",
    "SyntheticDAGSampler",
    "asap_levels",
    "build_encoder_queue",
    "build_model",
    "default_spec",
    "deploy",
    "embed_graph",
    "graph_depth",
    "list_models",
    "load_pretrained_policy",
    "model_statistics",
    "pack_sequence",
    "postprocess_schedule",
    "quantize_graph",
]
