"""Small statistics helpers for experiment summaries."""

from __future__ import annotations

import math
from typing import Dict, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return float(sum(values)) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for singleton input)."""
    if not values:
        raise ValueError("stddev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values.

    Speedup ratios (Fig. 3) are summarized geometrically, as is standard
    for normalized performance numbers.
    """
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linearly interpolated ``q``-th percentile, ``q`` in [0, 100].

    Matches numpy's default ("linear") method; used by the scheduling
    service for p50/p99 latency without pulling the full numpy import
    into the stats hot path.  Raises on empty input.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    pos = (len(data) - 1) * (q / 100.0)
    lower = math.floor(pos)
    upper = math.ceil(pos)
    if lower == upper:
        return float(data[lower])
    frac = pos - lower
    return float(data[lower] * (1.0 - frac) + data[upper] * frac)


def ratio_summary(values: Sequence[float]) -> Dict[str, float]:
    """Summarize a set of ratios: min / max / arithmetic & geometric mean."""
    return {
        "min": min(values),
        "max": max(values),
        "mean": mean(values),
        "geomean": geometric_mean(values),
    }
