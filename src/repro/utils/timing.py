"""Wall-clock timing helpers used by the solving-time experiments (Fig. 3)."""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self.start


def time_call(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Invoke ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
