"""ASCII table rendering for benchmark and experiment output.

The benchmark harness prints the same rows/series the paper reports; this
module renders them readably on a terminal without third-party deps.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as a boxed ASCII table string."""
    str_rows: List[List[str]] = [[_render_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(fill: str = "-", joint: str = "+") -> str:
        return joint + joint.join(fill * (w + 2) for w in widths) + joint

    def render_row(cells: Sequence[str]) -> str:
        padded = (f" {c:<{w}} " for c, w in zip(cells, widths))
        return "|" + "|".join(padded) + "|"

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line())
    parts.append(render_row(list(headers)))
    parts.append(line("="))
    for row in str_rows:
        parts.append(render_row(row))
    parts.append(line())
    return "\n".join(parts)
