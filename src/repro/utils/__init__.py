"""Shared utilities: seeded RNG handling, timing, statistics, tables."""

from repro.utils.rng import resolve_rng, spawn_rngs, stable_hash
from repro.utils.stats import geometric_mean, mean, ratio_summary, stddev
from repro.utils.tables import format_table
from repro.utils.timing import Timer, time_call

__all__ = [
    "Timer",
    "format_table",
    "geometric_mean",
    "mean",
    "ratio_summary",
    "resolve_rng",
    "spawn_rngs",
    "stable_hash",
    "stddev",
    "time_call",
]
