"""Deterministic random-number-generator helpers.

All stochastic components of the library (the synthetic DAG sampler, the
neural-network initializers, REINFORCE sampling) accept either an integer
seed or a ready-made :class:`numpy.random.Generator`.  Routing everything
through :func:`resolve_rng` keeps experiments reproducible end to end.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a non-deterministic generator, an ``int`` a seeded one,
    and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot build an RNG from {type(seed).__name__!r}")


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Split ``seed`` into ``count`` independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning
    so that streams are statistically independent and reproducible.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        return [
            np.random.default_rng(s)
            for s in seed.bit_generator.seed_seq.spawn(count)
        ]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]


def stable_hash(text: str, modulus: int = 2**31 - 1) -> int:
    """Deterministically hash ``text`` to an integer in ``[0, modulus)``.

    Python's built-in ``hash`` is salted per process, so node IDs derived
    from operator names (Sec. III-A of the paper) use MD5 instead to stay
    identical across runs and machines.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % modulus
