"""Serving-path schedule reward from the pipeline latency model.

Online adaptation needs a per-serve quality signal that is cheap enough
to compute on live traffic (no exact solver in the loop) and meaningful
across workload families.  :class:`PipelineLatencyReward` provides it by
reusing the existing Edge TPU latency model
(:mod:`repro.tpu.latency` / :mod:`repro.tpu.pipeline`):

``reward = lower-bound period / achieved period``

The *achieved* period is the closed-form steady-state bottleneck of the
schedule's stage profiles (exactly
:meth:`repro.tpu.pipeline.PipelinedTpuSystem.theoretical_period`, the
quantity the fleet simulator converges to).  The *lower bound* is the
schedule-independent compute bound

``max(total compute seconds / num_stages, max single-node seconds)``

— no pipeline can beat a perfectly balanced compute split, and no stage
can be faster than its slowest single operator.  The ratio lands in
``(0, 1]`` for compute-bound workloads: 1.0 means the schedule balanced
the pipeline perfectly, 0.5 means the bottleneck stage carries twice the
ideal share.  For transfer- or streaming-bound schedules the bound is
loose (the reward dips low for *every* scheduler); drift comparisons are
therefore always made against the same reward model, never across
models.

Everything is O(|V| + |E|) per schedule, which is what makes the reward
recordable per serve by :class:`repro.online.ExperienceBuffer`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.graphs.dag import ComputationalGraph
from repro.scheduling.schedule import Schedule, ScheduleResult
from repro.scheduling.sequence import pack_sequence
from repro.tpu.latency import op_compute_seconds
from repro.tpu.pipeline import PipelinedTpuSystem, compute_stage_profiles
from repro.tpu.spec import EdgeTPUSpec, default_spec


class PipelineLatencyReward:
    """Pipeline-efficiency reward model over the Edge TPU latency model.

    Parameters
    ----------
    spec:
        Device/link specification the stage profiles are computed with
        (defaults to the Coral USB accelerator).
    bus_mode:
        Interconnect topology for the bottleneck period (``"per_stage"``
        or ``"shared"``, see :class:`~repro.tpu.pipeline
        .PipelinedTpuSystem`).
    """

    def __init__(
        self, spec: Optional[EdgeTPUSpec] = None, bus_mode: str = "per_stage"
    ) -> None:
        self.spec = spec or default_spec()
        self._system = PipelinedTpuSystem(self.spec, bus_mode=bus_mode)

    # ------------------------------------------------------------------
    def period(self, graph: ComputationalGraph, schedule: Schedule) -> float:
        """Achieved steady-state bottleneck period of ``schedule``."""
        profiles = compute_stage_profiles(graph, schedule, self.spec)
        return self._system.theoretical_period(profiles)

    def bound_period(self, graph: ComputationalGraph, num_stages: int) -> float:
        """Schedule-independent lower bound on any ``num_stages`` period."""
        computes = [
            op_compute_seconds(graph.node(name), self.spec)
            for name in graph.node_names
        ]
        if not computes:
            return 0.0
        return max(sum(computes) / max(1, num_stages), max(computes))

    # ------------------------------------------------------------------
    def reward(self, graph: ComputationalGraph, schedule: Schedule) -> float:
        """``bound / achieved`` pipeline efficiency in ``(0, 1]``-ish."""
        achieved = self.period(graph, schedule)
        if achieved <= 0.0:
            return 1.0
        return self.bound_period(graph, schedule.num_stages) / achieved

    def reward_result(self, result: ScheduleResult) -> float:
        """Reward of a :class:`ScheduleResult` (uses its bound graph)."""
        return self.reward(result.schedule.graph, result.schedule)

    def order_reward(
        self,
        graph: ComputationalGraph,
        order: Sequence[str],
        num_stages: int,
        budget_slack: Optional[float] = None,
    ) -> float:
        """Reward of packing ``order`` through ``rho`` (training helper).

        This is the cost surface the online REINFORCE polish optimizes:
        ``cost = 1 - order_reward`` is bounded like the cosine cost, so
        the existing trainer's learning rates transfer.
        """
        packed = pack_sequence(graph, order, num_stages, budget_slack=budget_slack)
        return self.reward(graph, packed)

    def gap_to_bound(self, graph: ComputationalGraph, schedule: Schedule) -> float:
        """Relative gap ``achieved/bound - 1`` (0 = perfectly balanced)."""
        reward = self.reward(graph, schedule)
        if reward <= 0.0:
            return float("inf")
        return 1.0 / reward - 1.0


def default_reward_model() -> PipelineLatencyReward:
    """The reward model the online subsystem uses unless told otherwise."""
    return PipelineLatencyReward()


__all__ = ["PipelineLatencyReward", "default_reward_model"]
