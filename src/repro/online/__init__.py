"""Online policy adaptation: drift-aware continual learning in serving.

The first subsystem that lets the reproduction *improve itself* under
load.  A live :class:`~repro.service.SchedulingService` streams every
served schedule into an :class:`ExperienceBuffer` (scored by the
pipeline-latency reward model); a :class:`DriftDetector` watches the
workload's structural fingerprints and shape statistics; on drift, an
:class:`AdaptationLoop` fine-tunes a challenger copy of the serving
policy on the drifted traffic, shadow-evaluates it against the champion,
and — only on a statistically better mean reward — persists it through
the checkpoint lifecycle and hot-swaps it into the service with no
downtime and no torn request.
"""

from repro.online.adapt import (
    AdaptationConfig,
    AdaptationLoop,
    AdaptationReport,
    latency_teacher_order,
    teacher_example,
)
from repro.online.drift import DriftDetector, DriftEvent, GraphObservation
from repro.online.experience import (
    ExperienceBuffer,
    ExperienceRecord,
    ExperienceStats,
)
from repro.online.promotion import (
    PromotionRecord,
    ShadowEvaluation,
    evaluate_challenger,
    promote_challenger,
    scheduler_with_policy,
)
from repro.online.rewards import PipelineLatencyReward, default_reward_model

__all__ = [
    "AdaptationConfig",
    "AdaptationLoop",
    "AdaptationReport",
    "DriftDetector",
    "DriftEvent",
    "ExperienceBuffer",
    "ExperienceRecord",
    "ExperienceStats",
    "GraphObservation",
    "PipelineLatencyReward",
    "PromotionRecord",
    "ShadowEvaluation",
    "default_reward_model",
    "evaluate_challenger",
    "latency_teacher_order",
    "promote_challenger",
    "scheduler_with_policy",
    "teacher_example",
]
