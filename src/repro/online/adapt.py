"""The closed adaptation loop: observe -> detect -> fine-tune -> promote.

:class:`AdaptationLoop` ties the online subsystem together around a live
:class:`~repro.service.SchedulingService`:

1. **Observe** — a serve listener records every answered request into
   the :class:`~repro.online.ExperienceBuffer` (with its
   pipeline-latency reward) and feeds the
   :class:`~repro.online.DriftDetector`.
2. **Detect** — when the detector's Page-Hinkley test trips, the loop
   collects the drifted slice: recent buffered graphs (deduplicated by
   structural fingerprint) plus, when a ``graph_source`` is available,
   freshly sampled drifted graphs.
3. **Fine-tune** — drifted training graphs are *self-labeled* by a
   latency teacher (seeded local search over decode orders, maximizing
   the same reward the buffer records, linearized stage-major so labels
   share canonical structure); a challenger copy of the champion policy
   is warm-started with teacher-forced imitation and polished with the
   existing REINFORCE trainer using the pipeline-latency cost.
4. **Promote** — the challenger shadow-plays the champion on held-out
   drifted graphs; only a statistically better mean reward promotes it:
   the weights are persisted through :mod:`repro.rl.checkpoints` (with
   the drift event in their provenance) and hot-swapped into the service
   without downtime.

The loop runs synchronously (call :meth:`run_pending` from the serving
thread — deterministic, what experiments and tests use) or in the
background (:meth:`start` / :meth:`stop` — a daemon thread adapts while
the service keeps answering from the frozen champion).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.synthetic import LabeledExample
from repro.embedding.features import EmbeddingConfig
from repro.embedding.queue import build_encoder_queue
from repro.errors import ServiceError, TrainingError
from repro.graphs.dag import ComputationalGraph
from repro.obs.telemetry import Telemetry
from repro.online.drift import DriftDetector, DriftEvent, GraphObservation
from repro.online.experience import ExperienceBuffer, ExperienceRecord
from repro.online.promotion import (
    PromotionRecord,
    ShadowEvaluation,
    evaluate_challenger,
    promote_challenger,
    scheduler_with_policy,
)
from repro.online.rewards import PipelineLatencyReward, default_reward_model
from repro.rl.imitation import ImitationConfig, ImitationTrainer
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer
from repro.rl.respect import RespectScheduler
from repro.scheduling.sequence import pack_sequence
from repro.service import SchedulingService, ShardedSchedulingService

#: Supplies ``count`` freshly sampled graphs from the live distribution.
GraphSource = Callable[[int], Sequence[ComputationalGraph]]


# ----------------------------------------------------------------------
# latency teacher (self-labeling)
# ----------------------------------------------------------------------
def latency_teacher_order(
    graph: ComputationalGraph,
    num_stages: int,
    reward_model: PipelineLatencyReward,
    iters: int = 600,
    rng: Optional[np.random.Generator] = None,
    budget_slack: Optional[float] = None,
) -> Tuple[List[str], float]:
    """Self-label one graph: a decode order maximizing the served reward.

    Seeded local search over topological orders: repeatedly relocate a
    random node to a random position inside its dependency window (after
    its latest parent, before its earliest child), keeping moves that do
    not lower the packed schedule's pipeline-efficiency reward.  The
    search result is then *canonicalized* — linearized stage-major via
    :meth:`~repro.scheduling.schedule.Schedule.to_sequence` — so teacher
    orders share structure across graphs, which is what makes them
    imitable; the better of the two forms is returned with its reward.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    order = list(graph.topological_order())
    position = {name: i for i, name in enumerate(order)}
    parents = {name: graph.parents(name) for name in graph.node_names}
    children = {name: graph.children(name) for name in graph.node_names}

    def order_reward(candidate: Sequence[str]) -> float:
        return reward_model.order_reward(
            graph, candidate, num_stages, budget_slack=budget_slack
        )

    best = order_reward(order)
    for _ in range(max(0, iters)):
        index = int(rng.integers(0, len(order)))
        name = order[index]
        low = max((position[p] for p in parents[name]), default=-1) + 1
        high = min((position[c] for c in children[name]), default=len(order)) - 1
        if high <= low:
            continue
        target = int(rng.integers(low, high + 1))
        if target == index:
            continue
        candidate = order.copy()
        candidate.pop(index)
        candidate.insert(target, name)
        reward = order_reward(candidate)
        if reward >= best:
            best = reward
            order = candidate
            position = {n: i for i, n in enumerate(order)}
    canonical = pack_sequence(
        graph, order, num_stages, budget_slack=budget_slack
    ).to_sequence()
    canonical_reward = order_reward(canonical)
    if canonical_reward >= best:
        return list(canonical), canonical_reward
    return order, best


def teacher_example(
    graph: ComputationalGraph,
    num_stages: int,
    order: Sequence[str],
    embedding_config: EmbeddingConfig,
    budget_slack: Optional[float] = None,
) -> LabeledExample:
    """Wrap a self-labeled order as a trainer-consumable example."""
    queue = build_encoder_queue(graph, embedding_config)
    position = {name: i for i, name in enumerate(queue.node_names)}
    return LabeledExample(
        graph=graph,
        num_stages=num_stages,
        queue=queue,
        exact_schedule=pack_sequence(
            graph, order, num_stages, budget_slack=budget_slack
        ),
        gamma_names=list(order),
        gamma_indices=np.array([position[n] for n in order], dtype=int),
    )


# ----------------------------------------------------------------------
# configuration / reports
# ----------------------------------------------------------------------
@dataclass
class AdaptationConfig:
    """Knobs of one adaptation round.

    Defaults are sized for the CPU-scale end-to-end experiment (~1 min
    per adaptation); production-style deployments raise the counts the
    same way the training recipes do.
    """

    #: Newest buffered records considered drifted traffic.
    max_adaptation_graphs: int = 40
    #: Freshly sampled graphs added when a ``graph_source`` is available.
    fresh_graphs: int = 16
    #: Fraction of the drifted set held out for shadow evaluation.
    holdout_fraction: float = 0.25
    #: Minimum drifted graphs required to attempt an adaptation.
    min_graphs: int = 8
    #: Local-search iterations per self-labeled teacher order.
    teacher_search_iters: int = 600
    imitation_steps: int = 600
    imitation_learning_rate: float = 5e-3
    imitation_batch_size: int = 8
    #: REINFORCE polish on the pipeline-latency cost (0 disables).
    reinforce_steps: int = 20
    reinforce_learning_rate: float = 1e-4
    reinforce_batch_size: int = 8
    #: Promotion gate (see :func:`~repro.online.evaluate_challenger`).
    min_improvement: float = 0.0
    z_threshold: float = 1.64
    #: Where promoted checkpoints are persisted (None: swap only).
    checkpoint_dir: Optional[Union[str, Path]] = None
    checkpoint_name: str = "respect_online"
    seed: int = 0


@dataclass(frozen=True)
class AdaptationReport:
    """Everything one drift event led to."""

    event: DriftEvent
    status: str  # "promoted" | "rejected" | "insufficient_data"
    drifted_graphs: int
    fresh_graphs: int
    teacher_mean_reward: float
    imitation_final_accuracy: float
    reinforce_steps: int
    evaluation: Optional[ShadowEvaluation]
    promotion: Optional[PromotionRecord]


# ----------------------------------------------------------------------
# the loop
# ----------------------------------------------------------------------
class AdaptationLoop:
    """Drift-aware continual learning around one scheduling service.

    Parameters
    ----------
    service:
        The live service — a :class:`SchedulingService` or a
        :class:`~repro.service.ShardedSchedulingService` (observation,
        shadow evaluation and promotion all work per-shard through the
        same listener/swap interfaces); its scheduler must be a
        :class:`~repro.rl.respect.RespectScheduler` (the champion).
    buffer / detector:
        Experience store and drift detector; defaults are created when
        omitted.
    config:
        Adaptation knobs (:class:`AdaptationConfig`).
    reward_model:
        Pipeline-latency reward shared by recording, self-labeling,
        fine-tuning and shadow evaluation.
    graph_source:
        Optional ``source(count) -> graphs`` sampling *fresh* drifted
        traffic (e.g. the workload generator); buffered graphs alone are
        used without one.
    telemetry:
        Optional :class:`~repro.obs.Telemetry`.  Drift events and
        adaptation outcomes are counted under a ``layer="online"``
        label; with tracing enabled, each adaptation round becomes a
        trace whose root span carries the drift/promotion details as
        span events.  Pass the *service's* facade to get the serving
        and adaptation series in one registry scrape.
    """

    def __init__(
        self,
        service: Union[SchedulingService, ShardedSchedulingService],
        buffer: Optional[ExperienceBuffer] = None,
        detector: Optional[DriftDetector] = None,
        config: Optional[AdaptationConfig] = None,
        reward_model: Optional[PipelineLatencyReward] = None,
        graph_source: Optional[GraphSource] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        from repro.service.workers import unwrap_scheduler

        if not isinstance(
            unwrap_scheduler(service.scheduler), RespectScheduler
        ):
            raise ServiceError(
                "AdaptationLoop requires the service to front a "
                f"RespectScheduler, got {type(service.scheduler).__name__}"
            )
        self.service = service
        self.config = config or AdaptationConfig()
        self.buffer = buffer if buffer is not None else ExperienceBuffer(
            capacity=max(128, self.config.max_adaptation_graphs * 4),
            seed=self.config.seed,
        )
        self.detector = detector if detector is not None else DriftDetector()
        self.reward_model = reward_model or default_reward_model()
        self.graph_source = graph_source
        self.reports: List[AdaptationReport] = []
        #: Exceptions swallowed by the background loop (newest last).
        self.errors: List[Exception] = []
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: Optional[DriftEvent] = None
        self._adapting = False
        self._thread: Optional[threading.Thread] = None
        self._stop = False
        self._attached = False
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._online = self.telemetry.child(layer="online")
        self._m_drift_events = self._online.counter(
            "respect_drift_events_total",
            help="Drift events raised by the detector",
        )
        self._m_promotions = self._online.counter(
            "respect_promotions_total",
            help="Challengers promoted (hot-swapped) into the service",
        )

    # ------------------------------------------------------------------
    # observation plumbing
    # ------------------------------------------------------------------
    def attach(self) -> "AdaptationLoop":
        """Register the serve listener on the service."""
        if not self._attached:
            self.service.add_serve_listener(self._on_serve)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.service.remove_serve_listener(self._on_serve)
            self._attached = False

    def _on_serve(self, graph, num_stages, result) -> None:
        reward = self.reward_model.reward(graph, result.schedule)
        observation = GraphObservation.from_graph(graph)
        with self._lock:
            self.buffer.record(
                graph,
                num_stages,
                result.schedule,
                reward,
                fingerprint=observation.fingerprint,
            )
            event = self.detector.update(observation)
            if event is not None:
                # Counted at detection — exactly once per event, whether
                # or not an adaptation is already in flight.
                self._m_drift_events.inc()
            if event is not None and self._pending is None and not self._adapting:
                self._pending = event
                self._wakeup.notify_all()

    @property
    def pending_event(self) -> Optional[DriftEvent]:
        with self._lock:
            return self._pending

    # ------------------------------------------------------------------
    # synchronous driving
    # ------------------------------------------------------------------
    def run_pending(self) -> Optional[AdaptationReport]:
        """Execute the pending adaptation, if any (deterministic path)."""
        with self._lock:
            event = self._pending
            if event is None or self._adapting:
                return None
            self._pending = None
            self._adapting = True
        # One trace per adaptation round; the drift details ride on the
        # root span as an event so a trace viewer shows what tripped it.
        span = (
            self.telemetry.start_trace(
                "adaptation", at_observation=event.at_observation
            )
            or None
        )
        if span is not None:
            span.add_event(
                "drift",
                statistic=float(event.statistic),
                score=float(event.score),
                novelty_rate=float(event.novelty_rate),
            )
        report: Optional[AdaptationReport] = None
        try:
            if span is not None:
                with span.activate():
                    report = self._adapt(event)
            else:
                report = self._adapt(event)
        finally:
            with self._lock:
                self._adapting = False
                if report is not None and report.status == "promoted":
                    # The serving policy changed: today's traffic is the
                    # new normal.
                    self.detector.rebaseline()
                else:
                    # Nothing was promoted — the workload is still
                    # drifted relative to the reference; re-arm so
                    # sustained drift retries with a larger sample.
                    self.detector.rearm()
            if report is not None:
                self._online.counter(
                    "respect_adaptations_total",
                    help="Completed adaptation rounds by outcome",
                    outcome=report.status,
                ).inc()
                if report.status == "promoted":
                    self._m_promotions.inc()
            if span is not None:
                if report is not None:
                    span.set_attr("status", report.status)
                    if report.promotion is not None:
                        span.add_event(
                            "promotion",
                            retired_options_key=(
                                report.promotion.retired_options_key[:12]
                                if report.promotion.retired_options_key
                                else ""
                            ),
                        )
                    span.end()
                else:
                    span.end(status="error")
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # background driving
    # ------------------------------------------------------------------
    def start(self) -> "AdaptationLoop":
        """Adapt on a daemon thread whenever drift is detected."""
        self.attach()
        if self._thread is None or not self._thread.is_alive():
            with self._lock:
                self._stop = False
            self._thread = threading.Thread(
                target=self._background_loop,
                name="online-adaptation-loop",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        with self._lock:
            self._stop = True
            self._wakeup.notify_all()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=timeout)
        self.detach()

    def _background_loop(self) -> None:
        while True:
            with self._lock:
                while self._pending is None and not self._stop:
                    self._wakeup.wait(timeout=0.25)
                if self._stop:
                    return
            try:
                self.run_pending()
            except Exception as exc:
                # A failed adaptation (full disk during checkpointing, a
                # faulty graph_source, ...) must not kill the daemon —
                # the service would silently stop adapting forever.
                # Record the error and keep watching; the detector was
                # re-armed by run_pending's cleanup, so sustained drift
                # triggers a fresh attempt.
                self.errors.append(exc)
                del self.errors[:-8]  # keep the newest few

    # ------------------------------------------------------------------
    # one adaptation round
    # ------------------------------------------------------------------
    def _drifted_records(self) -> List[ExperienceRecord]:
        records = self.buffer.recent(self.config.max_adaptation_graphs)
        unique: Dict[str, ExperienceRecord] = {}
        for record in records:  # keep the newest record per fingerprint
            unique[record.fingerprint] = record
        return list(unique.values())

    def _adapt(self, event: DriftEvent) -> AdaptationReport:
        from repro.service.workers import unwrap_scheduler

        config = self.config
        # The champion may be served through a decode-worker adapter;
        # fine-tuning needs the in-process scheduler behind it (its
        # policy weights and options — identical by the pool's
        # fingerprint contract).
        champion = unwrap_scheduler(self.service.scheduler)
        assert isinstance(champion, RespectScheduler)
        rng = np.random.default_rng([config.seed, event.at_observation])

        records = self._drifted_records()
        cases: List[Tuple[ComputationalGraph, int]] = [
            (record.graph, record.num_stages) for record in records
        ]
        fresh_count = 0
        if self.graph_source is not None and config.fresh_graphs > 0:
            stages = self._dominant_stage_count(records)
            fresh = list(self.graph_source(config.fresh_graphs))
            fresh_count = len(fresh)
            cases.extend((graph, stages) for graph in fresh)
        if len(cases) < config.min_graphs:
            return AdaptationReport(
                event=event,
                status="insufficient_data",
                drifted_graphs=len(records),
                fresh_graphs=fresh_count,
                teacher_mean_reward=0.0,
                imitation_final_accuracy=0.0,
                reinforce_steps=0,
                evaluation=None,
                promotion=None,
            )

        # Deterministic holdout split for the shadow evaluation.
        order = rng.permutation(len(cases))
        holdout_size = max(2, int(len(cases) * config.holdout_fraction))
        holdout = [cases[i] for i in order[:holdout_size]]
        training = [cases[i] for i in order[holdout_size:]]
        if not training:
            training, holdout = holdout, training

        # Self-label the training slice with the latency teacher.
        examples: List[LabeledExample] = []
        teacher_rewards: List[float] = []
        for graph, stages in training:
            teacher, reward = latency_teacher_order(
                graph,
                stages,
                self.reward_model,
                iters=config.teacher_search_iters,
                rng=rng,
                budget_slack=champion.budget_slack,
            )
            teacher_rewards.append(reward)
            examples.append(
                teacher_example(
                    graph,
                    stages,
                    teacher,
                    champion.embedding_config,
                    budget_slack=champion.budget_slack,
                )
            )

        challenger_policy = self._fine_tune(champion, examples, rng)
        challenger = scheduler_with_policy(champion, challenger_policy)

        evaluation = evaluate_challenger(
            champion,
            challenger,
            [graph for graph, _ in holdout],
            [stages for _, stages in holdout],
            reward_model=self.reward_model,
            min_improvement=config.min_improvement,
            z_threshold=config.z_threshold,
        )
        promotion: Optional[PromotionRecord] = None
        if evaluation.promote:
            promotion = promote_challenger(
                self.service,
                challenger,
                evaluation,
                checkpoint_dir=config.checkpoint_dir,
                checkpoint_name=config.checkpoint_name,
                drift_event=event,
            )
        return AdaptationReport(
            event=event,
            status="promoted" if promotion is not None else "rejected",
            drifted_graphs=len(records),
            fresh_graphs=fresh_count,
            teacher_mean_reward=(
                sum(teacher_rewards) / len(teacher_rewards)
                if teacher_rewards
                else 0.0
            ),
            imitation_final_accuracy=self._last_imitation_accuracy,
            reinforce_steps=config.reinforce_steps if examples else 0,
            evaluation=evaluation,
            promotion=promotion,
        )

    @staticmethod
    def _dominant_stage_count(records: Sequence[ExperienceRecord]) -> int:
        counts: Dict[int, int] = {}
        for record in records:
            counts[record.num_stages] = counts.get(record.num_stages, 0) + 1
        if not counts:
            return 4
        return max(sorted(counts), key=lambda stages: counts[stages])

    # ------------------------------------------------------------------
    def _fine_tune(
        self,
        champion: RespectScheduler,
        examples: List[LabeledExample],
        rng: np.random.Generator,
    ) -> PointerNetworkPolicy:
        """Imitation warm start + REINFORCE polish on a champion clone."""
        config = self.config
        challenger = PointerNetworkPolicy(
            feature_dim=champion.policy.feature_dim,
            hidden_size=champion.policy.hidden_size,
            logit_clip=champion.policy.logit_clip,
        )
        challenger.load_state_dict(champion.policy.state_dict())
        self._last_imitation_accuracy = 0.0
        if not examples:
            raise TrainingError("fine-tuning requires at least one example")
        seed = int(rng.integers(0, 2**31 - 1))
        if config.imitation_steps > 0:
            trainer = ImitationTrainer(
                challenger,
                examples,
                ImitationConfig(
                    batch_size=config.imitation_batch_size,
                    learning_rate=config.imitation_learning_rate,
                    seed=seed,
                ),
            )
            history = trainer.train(config.imitation_steps)
            self._last_imitation_accuracy = history[-1].token_accuracy
        if config.reinforce_steps > 0:
            reward_model = self.reward_model
            slack = champion.budget_slack

            def latency_cost(example: LabeledExample, order: List[str]) -> float:
                reward = reward_model.order_reward(
                    example.graph, order, example.num_stages, budget_slack=slack
                )
                return max(0.0, 1.0 - reward)

            reinforce = ReinforceTrainer(
                challenger,
                examples,
                ReinforceConfig(
                    batch_size=config.reinforce_batch_size,
                    learning_rate=config.reinforce_learning_rate,
                    seed=seed,
                ),
                cost_fn=latency_cost,
            )
            reinforce.train(config.reinforce_steps)
        return challenger

    _last_imitation_accuracy: float = 0.0


__all__ = [
    "AdaptationConfig",
    "AdaptationLoop",
    "AdaptationReport",
    "GraphSource",
    "latency_teacher_order",
    "teacher_example",
]
