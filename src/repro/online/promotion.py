"""Champion/challenger shadow evaluation, promotion and hot-swap.

A fine-tuned challenger never reaches live traffic on faith: it is first
*shadow-evaluated* against the serving champion on held-out drifted
graphs (both policies schedule the identical set; rewards come from the
same :class:`~repro.online.rewards.PipelineLatencyReward`).  Promotion
requires the challenger's mean reward to beat the champion's by a
configurable margin **and** clear a paired one-sided z-test — a noisy
win on a handful of graphs does not roll the fleet.

A promoted challenger is persisted through the checkpoint lifecycle
(:mod:`repro.rl.checkpoints`) with provenance recording the drift event
and the shadow-evaluation numbers, then hot-swapped into the
:class:`~repro.service.SchedulingService` via
:meth:`~repro.service.SchedulingService.swap_scheduler`; the stale cache
entries of the retired champion are evicted with
:meth:`~repro.service.ScheduleCache.invalidate_options`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ServiceError
from repro.graphs.dag import ComputationalGraph
from repro.online.rewards import PipelineLatencyReward, default_reward_model
from repro.rl.checkpoints import checkpoint_metadata, save_checkpoint
from repro.rl.ptrnet import PointerNetworkPolicy
from repro.rl.respect import RespectScheduler
from repro.scheduling.sequence import normalize_stage_counts
from repro.service import SchedulingService, ShardedSchedulingService


def scheduler_with_policy(
    template: RespectScheduler, policy: PointerNetworkPolicy
) -> RespectScheduler:
    """A scheduler configured exactly like ``template`` but for ``policy``.

    Keeps every non-policy option (embedding config, packing slack,
    post-processing flags) identical, so champion and challenger differ
    *only* in weights — the property the shadow evaluation and the
    swap-atomicity guarantee both rely on.
    """
    return RespectScheduler(
        policy=policy,
        embedding_config=template.embedding_config,
        budget_slack=template.budget_slack,
        enforce_siblings=template.enforce_siblings,
        constrain_topological=template.constrain_topological,
    )


@dataclass(frozen=True)
class ShadowEvaluation:
    """Paired champion-vs-challenger comparison on held-out graphs."""

    champion_rewards: List[float]
    challenger_rewards: List[float]
    min_improvement: float
    z_threshold: float

    @property
    def size(self) -> int:
        return len(self.champion_rewards)

    @property
    def champion_mean(self) -> float:
        return (
            sum(self.champion_rewards) / self.size if self.size else 0.0
        )

    @property
    def challenger_mean(self) -> float:
        return (
            sum(self.challenger_rewards) / self.size if self.size else 0.0
        )

    @property
    def mean_improvement(self) -> float:
        return self.challenger_mean - self.champion_mean

    @property
    def z_score(self) -> float:
        """Paired one-sided z statistic of the per-graph improvements."""
        if self.size < 2:
            return 0.0
        diffs = [
            challenger - champion
            for champion, challenger in zip(
                self.champion_rewards, self.challenger_rewards
            )
        ]
        mean = sum(diffs) / len(diffs)
        var = sum((d - mean) ** 2 for d in diffs) / (len(diffs) - 1)
        if var <= 0.0:
            return math.inf if mean > 0 else 0.0
        return mean / math.sqrt(var / len(diffs))

    @property
    def promote(self) -> bool:
        """True when the challenger is statistically better."""
        return (
            self.size >= 2
            and self.mean_improvement > self.min_improvement
            and self.z_score > self.z_threshold
        )

    def summary(self) -> Dict[str, float]:
        """JSON-friendly view (stored in promotion provenance)."""
        return {
            "size": self.size,
            "champion_mean": self.champion_mean,
            "challenger_mean": self.challenger_mean,
            "mean_improvement": self.mean_improvement,
            "z_score": self.z_score,
            "min_improvement": self.min_improvement,
            "z_threshold": self.z_threshold,
            "promote": self.promote,
        }


def evaluate_challenger(
    champion: RespectScheduler,
    challenger: RespectScheduler,
    graphs: Sequence[ComputationalGraph],
    num_stages: Union[int, Sequence[int]],
    reward_model: Optional[PipelineLatencyReward] = None,
    min_improvement: float = 0.0,
    z_threshold: float = 1.64,
) -> ShadowEvaluation:
    """Score both schedulers on the same graphs, pairwise.

    ``z_threshold=1.64`` is the one-sided 95% gate; ``min_improvement``
    additionally demands a material effect size (promotions should pay
    for their cache invalidation).
    """
    graphs = list(graphs)
    if not graphs:
        raise ServiceError("shadow evaluation needs at least one graph")
    stage_counts = normalize_stage_counts(num_stages, len(graphs))
    reward_model = reward_model or default_reward_model()
    champion_results = champion.schedule_batch(graphs, stage_counts)
    challenger_results = challenger.schedule_batch(graphs, stage_counts)
    return ShadowEvaluation(
        champion_rewards=[
            reward_model.reward(graph, result.schedule)
            for graph, result in zip(graphs, champion_results)
        ],
        challenger_rewards=[
            reward_model.reward(graph, result.schedule)
            for graph, result in zip(graphs, challenger_results)
        ],
        min_improvement=min_improvement,
        z_threshold=z_threshold,
    )


@dataclass(frozen=True)
class PromotionRecord:
    """Outcome of one promotion (checkpoint + live swap)."""

    checkpoint_name: str
    checkpoint_path: Optional[Path]
    evaluation: ShadowEvaluation
    #: Options fingerprint of the retired champion.
    retired_options_key: str
    #: Stale cache entries evicted for the retired champion.
    invalidated_entries: int


def promote_challenger(
    service: Union[SchedulingService, ShardedSchedulingService],
    challenger: RespectScheduler,
    evaluation: ShadowEvaluation,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    checkpoint_name: str = "respect_online",
    drift_event: Optional[object] = None,
    invalidate_cache: bool = True,
) -> PromotionRecord:
    """Persist the challenger and hot-swap it into ``service``.

    The checkpoint's JSON sidecar gains an ``online_adaptation`` block
    recording the drift event that triggered fine-tuning, the shadow
    evaluation, and the options fingerprint of the champion it replaced
    — the audit trail for "why is the fleet running these weights".
    ``service`` may be a single :class:`SchedulingService` or a
    :class:`~repro.service.ShardedSchedulingService` — the swap is
    atomic per serving shard (see each class's ``swap_scheduler``
    contract: no request is ever served a torn mix of two policies, and
    requests submitted after the swap returns run the challenger on
    every shard).  With ``invalidate_cache=True`` the retired champion's
    cache entries are evicted eagerly from every shard's cache — and
    when the service mounts a persistent schedule store (``store=`` /
    ``store_dir=``), the eviction reaches **every tier**: the store
    appends durable tombstones and its index is snapshotted here, so a
    process restarted over the same store directory can never serve a
    schedule solved by the retired champion.
    """
    from repro.service.workers import unwrap_scheduler

    retiring_key = None
    champion = unwrap_scheduler(service.scheduler)
    if isinstance(champion, RespectScheduler):
        retiring_key = champion.options_fingerprint()
    path: Optional[Path] = None
    if checkpoint_dir is not None:
        meta = checkpoint_metadata(
            challenger.policy,
            checkpoint_name,
            source="repro.online.promotion.promote_challenger",
        )
        meta["online_adaptation"] = {
            "drift_event": (
                drift_event.summary()
                if hasattr(drift_event, "summary")
                else drift_event
            ),
            "shadow_evaluation": evaluation.summary(),
            "replaced_options_fingerprint": retiring_key,
        }
        path = save_checkpoint(
            challenger.policy, checkpoint_dir, checkpoint_name, metadata=meta
        )
    old_key = service.swap_scheduler(challenger)
    invalidated = (
        service.invalidate_options(old_key) if invalidate_cache else 0
    )
    if invalidate_cache and getattr(service, "schedule_store", None) is not None:
        # The tombstones the invalidation appended are already flushed;
        # the snapshot additionally fsyncs them and spares the next boot
        # a segment replay — promotion is a natural durability point.
        service.snapshot()
    return PromotionRecord(
        checkpoint_name=checkpoint_name,
        checkpoint_path=path,
        evaluation=evaluation,
        retired_options_key=old_key,
        invalidated_entries=invalidated,
    )


__all__ = [
    "PromotionRecord",
    "ShadowEvaluation",
    "evaluate_challenger",
    "promote_challenger",
    "scheduler_with_policy",
]
