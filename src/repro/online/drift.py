"""Workload drift detection over the served-graph stream.

The detector watches the same stream the experience buffer records:
one :class:`GraphObservation` per serve, carrying the graph's
isomorphism-invariant :func:`~repro.graphs.fingerprint
.structural_fingerprint` plus cheap shape statistics (node count, width,
op-type histogram).  Drift is declared by a **Page-Hinkley test** over a
per-observation drift score:

``score = w_n * novelty + w_s * tanh(shape deviation / 3) + w_d * JS``

* *novelty* — is the structural fingerprint absent from the reference
  set?  (Synthetic streams are near-always novel; the Page-Hinkley
  baseline absorbs any constant novelty rate, so only a *change* in the
  rate signals drift.)
* *shape deviation* — z-scores of node count and graph width against the
  reference distribution.
* *JS* — Jensen-Shannon divergence (base 2, in ``[0, 1]``) between the
  recent window's op-type histogram and the reference histogram.

The first ``reference_size`` observations calibrate the reference
(fingerprints, shape moments, op histogram, and the mean score of the
reference against itself).  Page-Hinkley then accumulates
``score - ref_mean - delta`` and triggers when the excursion above the
running minimum exceeds ``threshold`` — the standard sequential test for
a sustained mean increase, robust to single outlier graphs.

After a trigger the detector disarms (one adaptation at a time); call
:meth:`rebaseline` once the policy has been adapted so the *new* traffic
mix becomes the reference.
"""

from __future__ import annotations

import math
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional

from repro.errors import ServiceError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.fingerprint import structural_fingerprint
from repro.graphs.topology import asap_levels


@dataclass(frozen=True)
class GraphObservation:
    """Drift-relevant summary of one served graph."""

    fingerprint: str
    num_nodes: int
    width: int
    op_histogram: Mapping[str, int]

    @classmethod
    def from_graph(cls, graph: ComputationalGraph) -> "GraphObservation":
        levels = asap_levels(graph)
        width = max(Counter(levels.values()).values()) if levels else 0
        return cls(
            fingerprint=structural_fingerprint(graph),
            num_nodes=graph.num_nodes,
            width=width,
            op_histogram=dict(
                Counter(graph.node(n).op_type for n in graph.node_names)
            ),
        )


@dataclass(frozen=True)
class DriftEvent:
    """One detected distribution change."""

    #: Index (0-based) of the observation that tripped the test.
    at_observation: int
    #: Page-Hinkley excursion at the trigger (``> threshold``).
    statistic: float
    #: Drift score of the triggering observation.
    score: float
    #: Reference-phase mean score the excursion is measured against.
    reference_mean_score: float
    #: Fraction of window fingerprints unseen in the reference.
    novelty_rate: float
    #: Mean node count over the recent window.
    window_mean_nodes: float
    #: Window-vs-reference op-histogram Jensen-Shannon divergence.
    op_divergence: float

    def summary(self) -> Dict[str, float]:
        """JSON-friendly view (stored in promotion provenance)."""
        return {
            "at_observation": self.at_observation,
            "statistic": self.statistic,
            "score": self.score,
            "reference_mean_score": self.reference_mean_score,
            "novelty_rate": self.novelty_rate,
            "window_mean_nodes": self.window_mean_nodes,
            "op_divergence": self.op_divergence,
        }


def _js_divergence(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    """Jensen-Shannon divergence, base 2, of two discrete distributions."""
    keys = set(p) | set(q)
    if not keys:
        return 0.0

    def _kl(a: Mapping[str, float], b: Mapping[str, float]) -> float:
        total = 0.0
        for key in keys:
            pa = a.get(key, 0.0)
            if pa > 0.0:
                total += pa * math.log2(pa / b[key])
        return total

    mixture = {k: 0.5 * (p.get(k, 0.0) + q.get(k, 0.0)) for k in keys}
    return 0.5 * _kl(p, mixture) + 0.5 * _kl(q, mixture)


def _normalize(counts: Mapping[str, int]) -> Dict[str, float]:
    total = sum(counts.values())
    if total <= 0:
        return {}
    return {k: v / total for k, v in counts.items()}


@dataclass
class _Reference:
    """Frozen statistics of the calibration phase."""

    fingerprints: frozenset
    mean_nodes: float
    std_nodes: float
    mean_width: float
    std_width: float
    op_probs: Dict[str, float]
    mean_score: float


class DriftDetector:
    """Page-Hinkley drift detector over served-graph observations.

    Parameters
    ----------
    reference_size:
        Observations used to calibrate the reference distribution.
    window_size:
        Recent-window length for novelty rate and op-histogram
        divergence.
    delta:
        Page-Hinkley slack: mean score must rise by more than ``delta``
        before excursions accumulate (absorbs noise).
    threshold:
        Page-Hinkley trigger level (``lambda``); larger values trade
        detection delay for fewer false alarms.
    novelty_weight / shape_weight / divergence_weight:
        Score composition (see module docstring).
    """

    def __init__(
        self,
        reference_size: int = 64,
        window_size: int = 32,
        delta: float = 0.05,
        threshold: float = 2.0,
        novelty_weight: float = 0.4,
        shape_weight: float = 0.3,
        divergence_weight: float = 0.3,
    ) -> None:
        if reference_size < 2:
            raise ServiceError("reference_size must be >= 2")
        if window_size < 1:
            raise ServiceError("window_size must be >= 1")
        if delta < 0 or threshold <= 0:
            raise ServiceError("delta must be >= 0 and threshold > 0")
        self.reference_size = reference_size
        self.window_size = window_size
        self.delta = delta
        self.threshold = threshold
        self.novelty_weight = novelty_weight
        self.shape_weight = shape_weight
        self.divergence_weight = divergence_weight

        self._calibration: List[GraphObservation] = []
        self._reference: Optional[_Reference] = None
        self._window: Deque[GraphObservation] = deque(maxlen=window_size)
        self._observations = 0
        self._armed = True
        # Page-Hinkley state.
        self._ph_sum = 0.0
        self._ph_min = 0.0

    # ------------------------------------------------------------------
    @property
    def calibrated(self) -> bool:
        """True once the reference phase is complete."""
        return self._reference is not None

    @property
    def armed(self) -> bool:
        """False between a trigger and the next :meth:`rebaseline`."""
        return self._armed

    @property
    def observations(self) -> int:
        return self._observations

    # ------------------------------------------------------------------
    def _score(
        self,
        obs: GraphObservation,
        ref: _Reference,
        novelty: Optional[float] = None,
    ) -> float:
        if novelty is None:
            novelty = 0.0 if obs.fingerprint in ref.fingerprints else 1.0
        dev_nodes = abs(obs.num_nodes - ref.mean_nodes) / max(ref.std_nodes, 1e-9)
        dev_width = abs(obs.width - ref.mean_width) / max(ref.std_width, 1e-9)
        shape = math.tanh(max(dev_nodes, dev_width) / 3.0)
        window_probs = _normalize(self._window_counts())
        divergence = _js_divergence(window_probs, ref.op_probs)
        return (
            self.novelty_weight * novelty
            + self.shape_weight * shape
            + self.divergence_weight * divergence
        )

    def _window_counts(self) -> Counter:
        counts: Counter = Counter()
        for obs in self._window:
            counts.update(obs.op_histogram)
        return counts

    def _build_reference(self, observations: List[GraphObservation]) -> None:
        nodes = [o.num_nodes for o in observations]
        widths = [o.width for o in observations]
        mean_nodes = sum(nodes) / len(nodes)
        mean_width = sum(widths) / len(widths)
        std_nodes = math.sqrt(
            sum((n - mean_nodes) ** 2 for n in nodes) / len(nodes)
        )
        std_width = math.sqrt(
            sum((w - mean_width) ** 2 for w in widths) / len(widths)
        )
        op_counts: Counter = Counter()
        for obs in observations:
            op_counts.update(obs.op_histogram)
        ref = _Reference(
            fingerprints=frozenset(o.fingerprint for o in observations),
            mean_nodes=mean_nodes,
            std_nodes=max(std_nodes, 1.0),
            mean_width=mean_width,
            std_width=max(std_width, 1.0),
            op_probs=_normalize(op_counts),
            mean_score=0.0,
        )
        # Self-calibrate the score baseline: replay the reference
        # observations through the score with a warm window, so constant
        # properties of the stream (e.g. every synthetic graph being
        # structurally novel) cancel out of the Page-Hinkley excursion.
        # Novelty is estimated leave-one-out — a reference observation
        # whose fingerprint appears only once must count as novel, or a
        # stream of always-unique graphs calibrates to novelty 0 and
        # every live observation reads as drift.  Scores from a
        # still-warming window are excluded for the same reason (their
        # histogram divergence is systematically off).
        fingerprint_counts = Counter(o.fingerprint for o in observations)
        self._window.clear()
        scores = []
        for count, obs in enumerate(observations):
            self._window.append(obs)
            loo_novelty = 1.0 if fingerprint_counts[obs.fingerprint] <= 1 else 0.0
            score = self._score(obs, ref, novelty=loo_novelty)
            if count + 1 >= min(self.window_size, len(observations)):
                scores.append(score)
        ref.mean_score = sum(scores) / len(scores)
        self._reference = ref
        self._ph_sum = 0.0
        self._ph_min = 0.0

    # ------------------------------------------------------------------
    def update(self, obs: GraphObservation) -> Optional[DriftEvent]:
        """Feed one observation; returns a :class:`DriftEvent` on drift."""
        index = self._observations
        self._observations += 1
        if self._reference is None:
            self._calibration.append(obs)
            self._window.append(obs)
            if len(self._calibration) >= self.reference_size:
                self._build_reference(self._calibration)
                self._calibration = []
            return None
        self._window.append(obs)
        ref = self._reference
        score = self._score(obs, ref)
        if not self._armed:
            return None
        self._ph_sum += score - ref.mean_score - self.delta
        self._ph_min = min(self._ph_min, self._ph_sum)
        statistic = self._ph_sum - self._ph_min
        if statistic <= self.threshold:
            return None
        self._armed = False
        window = list(self._window)
        novel = sum(
            1 for o in window if o.fingerprint not in ref.fingerprints
        )
        return DriftEvent(
            at_observation=index,
            statistic=statistic,
            score=score,
            reference_mean_score=ref.mean_score,
            novelty_rate=novel / len(window) if window else 0.0,
            window_mean_nodes=(
                sum(o.num_nodes for o in window) / len(window) if window else 0.0
            ),
            op_divergence=_js_divergence(
                _normalize(self._window_counts()), ref.op_probs
            ),
        )

    def observe_graph(self, graph: ComputationalGraph) -> Optional[DriftEvent]:
        """Convenience: build the observation and :meth:`update`."""
        return self.update(GraphObservation.from_graph(graph))

    # ------------------------------------------------------------------
    def rearm(self) -> None:
        """Re-arm against the *existing* reference (Page-Hinkley reset).

        Used after a drift event whose adaptation did not promote: the
        workload is still drifted relative to the reference, so keeping
        it lets sustained drift re-trigger — the next attempt sees a
        larger drifted sample.  (After a *promotion* call
        :meth:`rebaseline` instead.)
        """
        self._ph_sum = 0.0
        self._ph_min = 0.0
        self._armed = True

    def rebaseline(self) -> None:
        """Adopt the recent window as the new reference and re-arm.

        Called after an adaptation promotes (or declines) so the detector
        tracks the *current* traffic mix instead of re-firing on the
        drift it already reported.  With fewer window observations than
        ``reference_size`` the available ones are used — the window is
        the best estimate of the new regime.
        """
        window = list(self._window)
        if len(window) >= 2:
            self._build_reference(window)
        else:
            self._reference = None
            self._calibration = list(window)
        self._armed = True


__all__ = ["DriftDetector", "DriftEvent", "GraphObservation"]
