"""Bounded, thread-safe experience recording for served schedules.

Every request the :class:`~repro.service.SchedulingService` answers is a
potential training signal: the graph that was served, the stage count,
the schedule the policy produced, and the reward the pipeline-latency
model assigns it.  :class:`ExperienceBuffer` records these tuples under
two complementary retention policies, both O(1) memory under unbounded
traffic:

* a **reservoir** (Vitter's Algorithm R) holding a uniform random sample
  of *all* traffic ever observed — the long-run workload memory used to
  mix pre-drift graphs into fine-tuning sets and to sanity-check a
  challenger against historical traffic;
* a **recent window** (bounded deque) holding the newest records — the
  post-drift slice adaptation fine-tunes on.

Reservoir replacement draws from a seeded generator, so a replayed
request stream reproduces the identical buffer state — the property the
end-to-end drift experiment's determinism rests on.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.errors import ServiceError
from repro.graphs.dag import ComputationalGraph
from repro.graphs.fingerprint import structural_fingerprint
from repro.scheduling.schedule import Schedule
from repro.utils.rng import SeedLike, resolve_rng


@dataclass(frozen=True)
class ExperienceRecord:
    """One served schedule with its reward."""

    graph: ComputationalGraph
    num_stages: int
    schedule: Schedule
    reward: float
    #: Isomorphism-invariant workload fingerprint (drift analytics).
    fingerprint: str
    #: 0-based position in the service's serve stream.
    serve_index: int


@dataclass(frozen=True)
class ExperienceStats:
    """Point-in-time counters of an :class:`ExperienceBuffer`."""

    observed: int
    reservoir_size: int
    reservoir_capacity: int
    recent_size: int
    recent_capacity: int
    mean_recent_reward: float


class ExperienceBuffer:
    """Reservoir + recent-window store of :class:`ExperienceRecord` s.

    Parameters
    ----------
    capacity:
        Reservoir size (uniform sample over all observed traffic).
    recent_capacity:
        Size of the newest-records window (defaults to ``capacity``).
    seed:
        Seed of the reservoir-replacement generator; fixed seeds make
        buffer contents a pure function of the record stream.
    """

    def __init__(
        self,
        capacity: int = 512,
        recent_capacity: Optional[int] = None,
        seed: SeedLike = 0,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"buffer capacity must be >= 1, got {capacity}")
        if recent_capacity is not None and recent_capacity < 1:
            raise ServiceError(
                f"recent_capacity must be >= 1, got {recent_capacity}"
            )
        self.capacity = capacity
        self.recent_capacity = (
            recent_capacity if recent_capacity is not None else capacity
        )
        self._rng = resolve_rng(seed)
        self._lock = threading.Lock()
        self._reservoir: List[ExperienceRecord] = []
        self._recent: Deque[ExperienceRecord] = deque(maxlen=self.recent_capacity)
        self._observed = 0

    # ------------------------------------------------------------------
    def record(
        self,
        graph: ComputationalGraph,
        num_stages: int,
        schedule: Schedule,
        reward: float,
        fingerprint: Optional[str] = None,
    ) -> ExperienceRecord:
        """Append one served schedule; returns the stored record.

        ``fingerprint`` may be supplied by callers that already computed
        the structural fingerprint (the drift detector does); otherwise
        it is derived here.
        """
        if fingerprint is None:
            fingerprint = structural_fingerprint(graph)
        with self._lock:
            entry = ExperienceRecord(
                graph=graph,
                num_stages=int(num_stages),
                schedule=schedule,
                reward=float(reward),
                fingerprint=fingerprint,
                serve_index=self._observed,
            )
            self._observed += 1
            self._recent.append(entry)
            if len(self._reservoir) < self.capacity:
                self._reservoir.append(entry)
            else:
                # Algorithm R: keep each observed record with equal
                # probability capacity/observed.
                slot = int(self._rng.integers(0, entry.serve_index + 1))
                if slot < self.capacity:
                    self._reservoir[slot] = entry
            return entry

    # ------------------------------------------------------------------
    def sample(self) -> List[ExperienceRecord]:
        """Snapshot of the reservoir (uniform over all observed)."""
        with self._lock:
            return list(self._reservoir)

    def recent(self, count: Optional[int] = None) -> List[ExperienceRecord]:
        """The newest ``count`` records, oldest first."""
        with self._lock:
            records = list(self._recent)
        if count is None:
            return records
        if count < 0:
            raise ServiceError(f"recent count must be >= 0, got {count}")
        return records[-count:] if count else []

    def since(self, serve_index: int) -> List[ExperienceRecord]:
        """Recent-window records with ``serve_index >= serve_index``.

        The post-drift slice: the drift detector reports the serve index
        it triggered at, and adaptation fine-tunes on everything after.
        Only the bounded recent window is searched, so the result cannot
        grow with traffic volume.
        """
        with self._lock:
            return [r for r in self._recent if r.serve_index >= serve_index]

    def __len__(self) -> int:
        with self._lock:
            return len(self._reservoir)

    def stats(self) -> ExperienceStats:
        with self._lock:
            recent = list(self._recent)
            return ExperienceStats(
                observed=self._observed,
                reservoir_size=len(self._reservoir),
                reservoir_capacity=self.capacity,
                recent_size=len(recent),
                recent_capacity=self.recent_capacity,
                mean_recent_reward=(
                    sum(r.reward for r in recent) / len(recent) if recent else 0.0
                ),
            )


__all__ = ["ExperienceBuffer", "ExperienceRecord", "ExperienceStats"]
